"""Wiring of clusters, services, network and proxies into one mesh."""

from __future__ import annotations

from repro.balancers.base import Balancer
from repro.errors import MeshError
from repro.mesh.cluster import Cluster
from repro.mesh.network import NetworkModel, WanLink
from repro.mesh.proxy import ClientProxy
from repro.mesh.service import Backend, ServiceDeployment
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.profiles import BackendProfile


def _per_cluster(value: int | dict, cluster: str, what: str) -> int:
    """Resolve a uniform-or-per-cluster deployment knob for ``cluster``."""
    if not isinstance(value, dict):
        return value
    found = value.get(cluster)
    if found is None:
        raise MeshError(f"no {what} entry for cluster {cluster!r}")
    return found


class ServiceMesh:
    """The multi-cluster service mesh: topology plus deployed services.

    Typical construction::

        sim = Simulator()
        rng = RngRegistry(seed=7)
        mesh = ServiceMesh(sim, rng, clusters=["cluster-1", "cluster-2",
                                               "cluster-3"])
        mesh.deploy_service("api", profiles={...}, replicas=3)
        proxy = mesh.client_proxy("cluster-1", "api", balancer)
    """

    def __init__(self, sim: Simulator, rng_registry: RngRegistry, clusters,
                 wan_link: WanLink | None = None, tracer=None):
        self.sim = sim
        self.rng = rng_registry
        # Optional distributed tracing: a repro.tracing.MeshTracer makes
        # every proxy emit per-request spans. None (the default) keeps the
        # data plane untraced — one attribute check per request.
        self.tracer = tracer
        self.clusters: dict[str, Cluster] = {}
        for entry in clusters:
            cluster = entry if isinstance(entry, Cluster) else Cluster(entry)
            if cluster.name in self.clusters:
                raise MeshError(f"duplicate cluster: {cluster.name}")
            self.clusters[cluster.name] = cluster
        self.network = NetworkModel(list(self.clusters), default_wan=wan_link)
        self._deployments: dict[str, ServiceDeployment] = {}
        self._proxies: list[ClientProxy] = []

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #

    def deploy_service(self, service: str,
                       profiles: dict[str, BackendProfile],
                       replicas: int | dict[str, int] = 3,
                       replica_capacity: int | dict[str, int] = 64,
                       ) -> ServiceDeployment:
        """Deploy ``service`` with one backend per cluster in ``profiles``.

        Args:
            service: logical service name.
            profiles: cluster name → that backend's behaviour profile.
            replicas: replicas per backend (paper: 3 per cluster), or a
                per-cluster dict for heterogeneous fleets.
            replica_capacity: concurrent requests per replica, or a
                per-cluster dict.
        """
        if service in self._deployments:
            raise MeshError(f"service already deployed: {service}")
        if not profiles:
            raise MeshError(f"service {service!r} needs at least one backend")
        deployment = ServiceDeployment(service)
        for cluster_name, profile in profiles.items():
            if cluster_name not in self.clusters:
                raise MeshError(f"unknown cluster: {cluster_name!r}")
            deployment.add_backend(Backend(
                self.sim, service, cluster_name, profile, self.rng,
                replicas=_per_cluster(replicas, cluster_name, "replicas"),
                replica_capacity=_per_cluster(
                    replica_capacity, cluster_name, "replica_capacity")))
        self._deployments[service] = deployment
        return deployment

    def deployment(self, service: str) -> ServiceDeployment:
        found = self._deployments.get(service)
        if found is None:
            raise MeshError(f"unknown service: {service!r}")
        return found

    def services(self) -> list[str]:
        return sorted(self._deployments)

    # ------------------------------------------------------------------ #
    # Proxies
    # ------------------------------------------------------------------ #

    def client_proxy(self, source_cluster: str, service: str,
                     balancer: Balancer,
                     forward_overhead_s: float = 0.0002,
                     max_retries: int = 0,
                     retry_backoff_s: float = 0.0,
                     request_timeout_s: float | None = None,
                     outlier_ejection=None) -> ClientProxy:
        """Create the sidecar proxy routing ``service`` traffic from a cluster.

        ``request_timeout_s`` and ``outlier_ejection`` (an
        :class:`~repro.mesh.ejection.OutlierEjectionConfig`) enable the
        proxy's resilience features; both default to off, matching the
        paper's evaluated configuration.
        """
        if source_cluster not in self.clusters:
            raise MeshError(f"unknown cluster: {source_cluster!r}")
        proxy = ClientProxy(
            self, source_cluster, service, balancer,
            self.rng.stream(f"proxy/{source_cluster}/{service}"),
            forward_overhead_s=forward_overhead_s,
            max_retries=max_retries, retry_backoff_s=retry_backoff_s,
            request_timeout_s=request_timeout_s,
            outlier_ejection=outlier_ejection)
        self._proxies.append(proxy)
        return proxy

    def proxies(self) -> list[ClientProxy]:
        return list(self._proxies)

    def register_all_telemetry(self, scraper) -> None:
        """Register every proxy's per-backend telemetry with a scraper.

        Scrape names are scoped by source cluster, so each (source,
        backend) pair is normally a distinct target. Should two proxies
        ever share a scrape name (e.g. custom unscoped telemetry), their
        bundles are aggregated into one target via a summing adapter.
        """
        by_name: dict[str, list] = {}
        for proxy in self._proxies:
            for telemetry in proxy.telemetry.values():
                by_name.setdefault(telemetry.scrape_name, []).append(telemetry)
        for name, bundles in by_name.items():
            if len(bundles) == 1:
                scraper.register(bundles[0])
            else:
                scraper.register(_AggregatedTelemetry(name, bundles))
        self.register_server_telemetry(scraper)

    def register_server_telemetry(self, scraper) -> None:
        """Expose every backend's replica queue occupancy to the scraper.

        This is the server-side feedback channel (C3-style): one unscoped
        gauge per backend counting requests executing or queued across its
        replicas.
        """
        from repro.telemetry.names import SERVER_QUEUE, server_series_name

        for service in self.services():
            deployment = self._deployments[service]
            for backend in deployment.backends.values():
                scraper.register_gauge(
                    server_series_name(backend.name), SERVER_QUEUE,
                    lambda b=backend: b.inflight)


class _AggregatedTelemetry:
    """Sums several proxies' telemetry for one backend at scrape time.

    Duck-types :class:`~repro.telemetry.metrics.BackendTelemetry` closely
    enough for the scraper (counter values, histogram cumulative counts,
    gauge value).
    """

    def __init__(self, backend_name: str, bundles):
        self.backend_name = backend_name
        self.scrape_name = backend_name
        self._bundles = list(bundles)
        self.requests_total = _SumCounter(
            [b.requests_total for b in bundles])
        self.failures_total = _SumCounter(
            [b.failures_total for b in bundles])
        self.success_latency = _SumHistogram(
            [b.success_latency for b in bundles])
        self.failure_latency = _SumHistogram(
            [b.failure_latency for b in bundles])
        self.inflight = _SumCounter([b.inflight for b in bundles])


class _SumCounter:
    def __init__(self, parts):
        self._parts = parts

    @property
    def value(self) -> float:
        return sum(part.value for part in self._parts)


class _SumHistogram:
    def __init__(self, parts):
        self._parts = parts

    @property
    def sum(self) -> float:
        return sum(part.sum for part in self._parts)

    @property
    def count(self) -> int:
        return sum(part.count for part in self._parts)

    def cumulative_counts(self) -> tuple:
        totals = None
        for part in self._parts:
            counts = part.cumulative_counts()
            if totals is None:
                totals = list(counts)
            else:
                totals = [a + b for a, b in zip(totals, counts)]
        return tuple(totals or ())
