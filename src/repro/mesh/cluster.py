"""Cluster naming and membership."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Cluster:
    """One Kubernetes cluster of the multi-cluster mesh.

    Attributes:
        name: cluster identifier (e.g. ``"cluster-1"``).
        region: informational region label (e.g. ``"eu-central-1"``).
    """

    name: str
    region: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("cluster name must be non-empty")


def backend_name(service: str, cluster: str) -> str:
    """Canonical name of a service's per-cluster deployment."""
    return f"{service}/{cluster}"


def split_backend_name(backend: str) -> tuple[str, str]:
    """Inverse of :func:`backend_name`."""
    service, _sep, cluster = backend.rpartition("/")
    if not service or not cluster:
        raise ValueError(f"not a backend name: {backend!r}")
    return service, cluster
