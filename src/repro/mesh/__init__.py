"""The multi-cluster service-mesh data plane.

Models the paper's test environment (§5.1): multiple Kubernetes clusters
joined by a multi-cluster mesh, sidecar proxies recording data-plane
metrics, WAN links with configurable (and time-varying) delay, and SMI
TrafficSplit objects steering traffic between per-cluster backends.
"""

from repro.mesh.cluster import Cluster
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import NetworkModel, WanLink
from repro.mesh.proxy import ClientProxy
from repro.mesh.replica import Replica
from repro.mesh.request import RequestRecord
from repro.mesh.service import Backend, ServiceDeployment
from repro.mesh.traffic_split import TrafficSplit

__all__ = [
    "Backend",
    "ClientProxy",
    "Cluster",
    "NetworkModel",
    "Replica",
    "RequestRecord",
    "ServiceDeployment",
    "ServiceMesh",
    "TrafficSplit",
    "WanLink",
]
