"""Request bookkeeping records."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """The outcome of one completed request, as the benchmark client sees it.

    Attributes:
        request_id: monotonically increasing id within one run.
        service: logical service the request targeted.
        source_cluster: cluster the client proxy lives in.
        backend: the backend (service/cluster deployment) that served it.
        intended_start_s: when the open-loop schedule *wanted* to send the
            request (latency is measured from here, correcting for
            coordinated omission as wrk2 does).
        start_s: when the request actually left the client.
        end_s: when the response (or failure) arrived back.
        success: whether the response was successful.
    """

    request_id: int
    service: str
    source_cluster: str
    backend: str
    intended_start_s: float
    start_s: float
    end_s: float
    success: bool
    # Number of attempts the client made (1 = no retries). The paper's
    # benchmarks do not retry (§5.2.1); the retry extension sets this.
    attempts: int = 1

    @property
    def latency_s(self) -> float:
        """Client-perceived latency, measured from the intended start."""
        return self.end_s - self.intended_start_s

    @property
    def service_latency_s(self) -> float:
        """Latency measured from the actual send time."""
        return self.end_s - self.start_s
