"""The callback state-machine request engine (the data-plane fast path).

One simulated request in the generator engine is a spawned
:class:`~repro.sim.process.Process` whose every hop (proxy forwarding
overhead, WAN legs, replica queue/execution, retry back-off, deadline
racing) allocates a fresh ``Timeout``/``Event`` plus generator-resume
machinery — roughly a dozen heap events per request. This module rewrites
that lifecycle as a flat state machine over pooled callback events
(:class:`~repro.sim.fastpath.FastPath`): the same lifecycle, the same
side effects, a fraction of the allocations.

**Equivalence contract.** The fast path must be *event-order identical*
to :meth:`repro.mesh.proxy.ClientProxy.dispatch`, the reference
implementation — not merely "statistically the same": the golden-digest
determinism suite demands byte-identical request records, controller
weights and OTLP trace exports for a fixed seed. The simulator breaks
time ties by heap insertion order, so the machine performs **the same
agenda insertions at the same code positions** as the generator engine:

========================================  ==============================
generator engine                          fast path mirror
========================================  ==============================
``sim.spawn`` bootstrap event             ``dispatch()`` schedules the
                                          machine start at delay 0
``yield sim.timeout(...)`` per hop        one pooled callback per hop
``Server.acquire`` immediate-grant        delay-0 pooled callback
event (``succeed`` at creation)           (``try_acquire`` grants the
                                          slot synchronously)
``Server.acquire`` queued waiter          unscheduled pooled gate in the
                                          same FIFO (fired by
                                          ``release``)
deadline race: spawned ``_forward``       flight begin scheduled at
process bootstrap + deadline timeout,     delay 0 + deadline callback;
then completion → ``AnyOf`` →             completion hop → any-of hop →
parent resume (two delay-0 pops)          machine resume (same two pops)
blackhole gate ``yield sim.event()``      unscheduled pooled gate in
(fired by ``Replica.restart``)            ``_blackhole_gates``
process-completion event (no waiters,     omitted — popping a
no callbacks)                             side-effect-free event cannot
                                          reorder anything else
========================================  ==============================

RNG draws (balancer pick, WAN jitter, failure/service sampling) happen
inside the same callbacks at the same simulation times, so every private
random stream is consumed in exactly the reference order. The
equivalence suite (``tests/mesh/test_fastpath_equivalence.py``) checks
record-for-record equality against the legacy engine across seeds and
scenarios, including fault-injection and deadline/retry-heavy runs.

Scope: plain proxy dispatch — the path every scenario benchmark and the
perf baseline exercise. Call-graph applications (hotel, social) run
request *bodies* on the replica and stay on the generator engine, which
remains fully supported via ``engine="process"``.
"""

from __future__ import annotations

import math

from repro.errors import MeshError
from repro.mesh.cluster import split_backend_name
from repro.mesh.request import RequestRecord
from repro.sim import vectorpath
from repro.sim.fastpath import FastPath
from repro.tracing import model as trace_model


class FastRequestEngine:
    """Drives one proxy's requests as pooled-callback state machines.

    Args:
        sim: the owning simulator.
        proxy: the :class:`~repro.mesh.proxy.ClientProxy` whose dispatch
            lifecycle this engine reproduces.
        records: list completed :class:`RequestRecord`\\ s are appended
            to (in completion order, like the generator load generator).
        max_free: bound on each free list (events, machines, flights).
    """

    def __init__(self, sim, proxy, records: list, max_free: int = 512):
        self.sim = sim
        self.proxy = proxy
        self.records = records
        self.fast = FastPath(sim, max_free=max_free)
        # Pre-bound hot-path methods: one call frame per hop instead of
        # an attribute-walk through facade objects.
        self.sched = self.fast.pool.schedule
        self.net_delay = proxy.mesh.network.delay
        self._max_free = max_free
        self._machines: list[_RequestMachine] = []
        self._flights: list[_Flight] = []
        self.machines_created = 0
        self.flights_created = 0
        # backend name -> (Backend, target_cluster): the pick set is
        # fixed for a deployed service, so the split/lookup chain of the
        # reference implementation is resolved once per backend.
        self._targets: dict[str, tuple] = {}

    def dispatch(self, intended_start_s: float) -> None:
        """Start one request's state machine (the ``sim.spawn`` mirror).

        The machine begins executing at the current time but only after
        one agenda hop — exactly where the generator engine's process
        bootstrap event pops.
        """
        machines = self._machines
        if machines:
            machine = machines.pop()
        else:
            machine = _RequestMachine(self)
            self.machines_created += 1
        machine.intended_start_s = intended_start_s
        self.sched(0.0, machine._start_cb)

    # ------------------------------------------------------------------ #
    # Pools
    # ------------------------------------------------------------------ #

    def _recycle_machine(self, machine: "_RequestMachine") -> None:
        machine._reset()
        if len(self._machines) < self._max_free:
            self._machines.append(machine)

    def _flight(self, machine: "_RequestMachine",
                raced: bool) -> "_Flight":
        """A flight for the machine's current attempt.

        Raced flights (deadline configured) can outlive both the attempt
        and the machine — their deadline and completion hops may fire
        after the machine moved on — so they are never pooled; the
        unraced common case reuses pooled flights.
        """
        if raced:
            flight = self.flight_class(self)
            self.flights_created += 1
        else:
            flights = self._flights
            if flights:
                flight = flights.pop()
            else:
                flight = self.flight_class(self)
                self.flights_created += 1
        flight.machine = machine
        flight.backend = machine.backend
        flight.target_cluster = machine.target_cluster
        flight.ctx = machine.attempt_ctx
        flight.raced = raced
        # No further resets needed: pooled flights come back from
        # _recycle_flight with span/replica references cleared, raced
        # flights are always fresh (anyof/call flags start False from
        # __init__), and success/holding_slot are written by every path
        # that later reads them.
        return flight

    def _recycle_flight(self, flight: "_Flight") -> None:
        # Only unraced flights come back (see _flight); drop references
        # so a pooled flight cannot keep a finished request alive.
        flight.machine = None
        flight.backend = None
        flight.replica = None
        flight.ctx = None
        flight.wan_span = None
        flight.queue_span = None
        flight.exec_span = None
        if len(self._flights) < self._max_free:
            self._flights.append(flight)

    def _resolve(self, backend_name: str) -> tuple:
        """(Backend, target_cluster, telemetry) for a pick, cached.

        The miss path performs the reference implementation's unknown-
        backend check first, so a bad balancer pick raises the exact
        error _attempt() would.
        """
        found = self._targets.get(backend_name)
        if found is None:
            proxy = self.proxy
            telemetry = proxy.telemetry.get(backend_name)
            if telemetry is None:
                raise MeshError(
                    f"balancer picked unknown backend {backend_name!r} "
                    f"for service {proxy.service!r}")
            _service, target_cluster = split_backend_name(backend_name)
            backend = proxy.mesh.deployment(
                proxy.service).backend_in(target_cluster)
            found = (backend, target_cluster, telemetry)
            self._targets[backend_name] = found
        return found

    def tail0(self, cb) -> None:
        """Schedule a delay-0 hop that sits at a *tail call position*.

        Call sites must guarantee the caller (and its whole transitive
        caller chain up to the run loop) does nothing after this call —
        only then may a subclass run ``cb`` inline when the agenda proves
        the hop would pop immediately next anyway. The base engine always
        schedules, preserving the one-pop-per-hop event count.
        """
        self.sched(0.0, cb)

    def stats(self) -> dict:
        """Pool telemetry for benchmarks and the event-pool tests."""
        stats = self.fast.stats()
        stats["machines_created"] = self.machines_created
        stats["flights_created"] = self.flights_created
        return stats


class _RequestMachine:
    """One request: dispatch → attempts (with retry/backoff) → record.

    Mirrors :meth:`ClientProxy.dispatch` / :meth:`ClientProxy._attempt`
    line for line; every divergence is an equivalence bug.
    """

    __slots__ = (
        "engine", "sim", "proxy", "sched",
        "intended_start_s", "request_id", "start_s", "attempts",
        "ctx", "root_span", "attempt_ctx", "attempt_span", "backoff_span",
        "attempt_start", "backend_name", "backend", "target_cluster",
        "telemetry",
        "_start_cb", "_after_overhead_cb", "_retry_cb", "_retry_traced_cb",
    )

    def __init__(self, engine: FastRequestEngine):
        self.engine = engine
        self.sim = engine.sim
        self.proxy = engine.proxy
        self.sched = engine.sched
        self._start_cb = self._start
        self._after_overhead_cb = self._after_overhead
        self._retry_cb = self._begin_attempt
        self._retry_traced_cb = self._retry_traced
        self._reset()

    def _reset(self) -> None:
        self.intended_start_s = 0.0
        self.request_id = -1
        self.start_s = 0.0
        self.attempts = 0
        self.ctx = None
        self.root_span = None
        self.attempt_ctx = None
        self.attempt_span = None
        self.backoff_span = None
        self.attempt_start = 0.0
        self.backend_name = ""
        self.backend = None
        self.target_cluster = ""
        self.telemetry = None

    # -- dispatch ------------------------------------------------------ #

    def _start(self) -> None:
        """Mirror of dispatch() up to the attempt loop."""
        proxy = self.proxy
        self.start_s = self.sim.now
        self.request_id = next(proxy._request_ids)

        tracer = proxy.mesh.tracer
        ctx = tracer.trace() if tracer is not None else None
        root = None
        if ctx is not None:
            root = ctx.start(
                trace_model.REQUEST, trace_model.CLIENT,
                self.intended_start_s,
                attributes={
                    "request_id": self.request_id,
                    "service": proxy.service,
                    "source_cluster": proxy.source_cluster,
                })
            ctx = ctx.child(root)
        self.ctx = ctx
        self.root_span = root
        self.attempts = 0
        self._begin_attempt()

    def _begin_attempt(self) -> None:
        """Mirror of the attempt loop head plus _attempt()'s prologue."""
        proxy = self.proxy
        self.attempts += 1
        start = self.sim.now
        self.attempt_start = start
        # _pick_backend() with no ejector is exactly one balancer pick;
        # skip its frame on that (default) configuration.
        if proxy.ejector is None:
            backend_name = proxy.balancer.pick(proxy.rng, start)
            ejection_skips = 0
        else:
            backend_name, ejection_skips = proxy._pick_backend(start)
        backend, target_cluster, telemetry = self.engine._resolve(
            backend_name)

        span = None
        attempt_ctx = None
        ctx = self.ctx
        if ctx is not None:
            attributes = {"backend": backend_name, "attempt": self.attempts}
            if ejection_skips:
                attributes["ejection.skips"] = ejection_skips
            audit = ctx.tracer.audit
            if audit is not None:
                attributes["decision_id"] = audit.last_decision_id
            span = ctx.start(trace_model.ATTEMPT, trace_model.CLIENT,
                             start, attributes=attributes)
            attempt_ctx = ctx.child(span)

        telemetry.on_request_sent()
        proxy.balancer.on_request_sent(backend_name, start)

        self.backend_name = backend_name
        self.backend = backend
        self.target_cluster = target_cluster
        self.telemetry = telemetry
        self.attempt_span = span
        self.attempt_ctx = attempt_ctx

        if proxy.forward_overhead_s > 0:
            self.sched(proxy.forward_overhead_s, self._after_overhead_cb)
        else:
            self._after_overhead()

    def _after_overhead(self) -> None:
        """Launch the forward leg, racing the deadline if configured."""
        proxy = self.proxy
        engine = self.engine
        if proxy.request_timeout_s is None:
            flight = engine._flight(self, raced=False)
            flight._begin()
            return
        remaining = proxy.request_timeout_s - (
            self.sim.now - self.attempt_start)
        if remaining <= 0:
            proxy.timeouts += 1
            self._attempt_end(False, True)
            return
        flight = engine._flight(self, raced=True)
        # Mirror: sub-process bootstrap event, then the deadline timeout.
        sched = self.sched
        sched(0.0, flight._begin_cb)
        sched(remaining, flight._deadline_cb)

    # -- attempt epilogue / retry loop --------------------------------- #

    def _attempt_end(self, success: bool, timed_out: bool) -> None:
        """Mirror of _attempt()'s epilogue plus the dispatch retry loop."""
        proxy = self.proxy
        now = self.sim.now
        latency = now - self.attempt_start
        self.telemetry.on_response(latency, success)
        proxy.balancer.on_response(self.backend_name, now, latency, success)
        if proxy.ejector is not None:
            proxy.ejector.on_response(self.backend_name, now, success)
        span = self.attempt_span
        if span is not None:
            if timed_out:
                status = trace_model.TIMEOUT
            else:
                status = trace_model.OK if success else trace_model.ERROR
            self.ctx.end(span, now, status=status)

        if success or self.attempts > proxy.max_retries:
            self._finish(success)
            return
        backoff = proxy.retry_backoff_s
        if backoff > 0:
            ctx = self.ctx
            if ctx is not None:
                self.backoff_span = ctx.start(
                    trace_model.RETRY_BACKOFF, trace_model.CLIENT, now)
                self.sched(backoff, self._retry_traced_cb)
            else:
                self.sched(backoff, self._retry_cb)
        else:
            self._begin_attempt()

    def _retry_traced(self) -> None:
        self.ctx.end(self.backoff_span, self.sim.now)
        self.backoff_span = None
        self._begin_attempt()

    def _finish(self, success: bool) -> None:
        """Close the root span, emit the record, recycle the machine."""
        proxy = self.proxy
        now = self.sim.now
        root = self.root_span
        if root is not None:
            root.attributes["attempts"] = self.attempts
            root.attributes["backend"] = self.backend_name
            self.ctx.end(
                root, now,
                status=trace_model.OK if success else trace_model.ERROR)
        engine = self.engine
        engine.records.append(RequestRecord(
            request_id=self.request_id,
            service=proxy.service,
            source_cluster=proxy.source_cluster,
            backend=self.backend_name,
            intended_start_s=self.intended_start_s,
            start_s=self.start_s,
            end_s=now,
            success=success,
            attempts=self.attempts,
        ))
        engine._recycle_machine(self)


class _Flight:
    """One attempt's forward leg: WAN out → replica → WAN back.

    Mirrors :meth:`ClientProxy._forward` (plus
    :meth:`Replica.handle` / :meth:`Replica._handle_down`). Raced
    flights additionally mirror the ``spawn + deadline + AnyOf``
    protocol of :meth:`ClientProxy._forward_with_deadline`: completion
    and deadline each fire a delay-0 "any-of" hop, the first one wins,
    and the loser's pop is a no-op — the exact event pattern (and
    therefore tie-break behavior) of the generator engine. A flight
    abandoned by the deadline keeps running against the replica, as the
    defused process does.
    """

    __slots__ = (
        "engine", "sim", "proxy", "sched", "net_delay", "tail0",
        "machine", "backend", "target_cluster", "ctx", "replica",
        "raced", "anyof_triggered", "call_processed", "success",
        "holding_slot", "wan_span", "queue_span", "exec_span",
        "_begin_cb", "_arrived_cb", "_acquired_cb", "_exec_ok_cb",
        "_exec_failed_cb", "_down_done_cb", "_returned_cb",
        "_deadline_cb", "_completion_cb", "_anyof_cb",
    )

    def __init__(self, engine: FastRequestEngine):
        self.engine = engine
        self.sim = engine.sim
        self.proxy = engine.proxy
        self.sched = engine.sched
        self.net_delay = engine.net_delay
        self.tail0 = engine.tail0
        self.machine = None
        self.backend = None
        self.target_cluster = ""
        self.ctx = None
        self.replica = None
        self.raced = False
        self.anyof_triggered = False
        self.call_processed = False
        self.success = False
        self.holding_slot = False
        self.wan_span = None
        self.queue_span = None
        self.exec_span = None
        self._begin_cb = self._begin
        self._arrived_cb = self._arrived
        self._acquired_cb = self._acquired
        self._exec_ok_cb = self._exec_ok
        self._exec_failed_cb = self._exec_failed
        self._down_done_cb = self._down_done
        self._returned_cb = self._returned
        self._deadline_cb = self._deadline
        self._completion_cb = self._completion
        self._anyof_cb = self._anyof

    # -- WAN out ------------------------------------------------------- #

    def _begin(self) -> None:
        proxy = self.proxy
        sim = self.sim
        delay = self.net_delay(
            proxy.source_cluster, self.target_cluster, proxy.rng, sim.now)
        span = None
        ctx = self.ctx
        if ctx is not None:
            src, dst = proxy.source_cluster, self.target_cluster
            span = ctx.start(
                trace_model.WAN_SEND, trace_model.NETWORK, sim.now,
                attributes={"src": src, "dst": dst, "link": f"{src}->{dst}"})
        self.wan_span = span
        if math.isinf(delay):
            if span is not None:
                span.attributes["partitioned"] = True
            return  # parked forever, like `yield sim.event()`
        if delay > 0:
            self.sched(delay, self._arrived_cb)
        else:
            self._arrived()

    # -- replica ------------------------------------------------------- #

    def _arrived(self) -> None:
        sim = self.sim
        span = self.wan_span
        ctx = self.ctx
        if span is not None:
            ctx.end(span, sim.now)
            self.wan_span = None
        replica = self.backend.pick_replica()
        self.replica = replica
        if not replica.up:
            self._begin_down(holding_slot=False)
            return
        if ctx is not None:
            self.queue_span = ctx.start(
                trace_model.SERVER_QUEUE, trace_model.SERVER, sim.now,
                attributes={"replica": replica.name})
        server = replica.server
        if server.try_acquire():
            # Mirror the immediate-grant acquire event (delay-0 pop).
            # Tail position: _arrived's entire caller chain (_begin /
            # _after_overhead / a timer pop) returns straight to the run
            # loop after this.
            self.tail0(self._acquired_cb)
        else:
            server.enqueue_waiter(self.engine.fast.gate(self._acquired_cb))

    def _acquired(self) -> None:
        sim = self.sim
        ctx = self.ctx
        if self.queue_span is not None:
            ctx.end(self.queue_span, sim.now)
            self.queue_span = None
        replica = self.replica
        if not replica.up:
            # Crashed while queued: the connection dies with the pod,
            # the slot is held meanwhile (hung-worker semantics).
            self._begin_down(holding_slot=True)
            return
        now = sim.now
        profile = replica.profile
        if ctx is not None:
            self.exec_span = ctx.start(
                trace_model.SERVER_EXEC, trace_model.SERVER, now,
                attributes={"replica": replica.name})
        if profile.sample_failure(replica.rng, now):
            self.sched(profile.failure_latency_s, self._exec_failed_cb)
        else:
            self.sched(profile.sample_service_time(replica.rng, now)
                       * replica.service_time_scale,
                       self._exec_ok_cb)

    def _exec_ok(self) -> None:
        replica = self.replica
        replica.completed += 1
        if self.exec_span is not None:
            self.ctx.end(self.exec_span, self.sim.now,
                         status=trace_model.OK)
            self.exec_span = None
        self.success = True
        replica.server.release()
        self._wan_back()

    def _exec_failed(self) -> None:
        replica = self.replica
        replica.failed += 1
        if self.exec_span is not None:
            self.ctx.end(self.exec_span, self.sim.now,
                         status=trace_model.ERROR)
            self.exec_span = None
        self.success = False
        replica.server.release()
        self._wan_back()

    # -- down replica -------------------------------------------------- #

    def _begin_down(self, holding_slot: bool) -> None:
        replica = self.replica
        self.holding_slot = holding_slot
        if self.ctx is not None:
            self.exec_span = self.ctx.start(
                trace_model.SERVER_EXEC, trace_model.SERVER, self.sim.now,
                attributes={"replica": replica.name,
                            "down": replica.down_mode})
        if replica.down_mode == "blackhole":
            replica._blackhole_gates.append(
                self.engine.fast.gate(self._down_done_cb))
        else:
            self.sched(replica.profile.failure_latency_s, self._down_done_cb)

    def _down_done(self) -> None:
        replica = self.replica
        replica.failed += 1
        if self.exec_span is not None:
            self.ctx.end(self.exec_span, self.sim.now,
                         status=trace_model.ERROR)
            self.exec_span = None
        self.success = False
        if self.holding_slot:
            self.holding_slot = False
            replica.server.release()
        self._wan_back()

    # -- WAN back ------------------------------------------------------ #

    def _wan_back(self) -> None:
        proxy = self.proxy
        sim = self.sim
        delay = self.net_delay(
            self.target_cluster, proxy.source_cluster, proxy.rng, sim.now)
        span = None
        ctx = self.ctx
        if ctx is not None:
            src, dst = self.target_cluster, proxy.source_cluster
            span = ctx.start(
                trace_model.WAN_RECV, trace_model.NETWORK, sim.now,
                attributes={"src": src, "dst": dst, "link": f"{src}->{dst}"})
        self.wan_span = span
        if math.isinf(delay):
            if span is not None:
                span.attributes["partitioned"] = True
            return  # parked forever
        if delay > 0:
            self.sched(delay, self._returned_cb)
        else:
            self._returned()

    def _returned(self) -> None:
        if self.wan_span is not None:
            self.ctx.end(self.wan_span, self.sim.now)
            self.wan_span = None
        if not self.raced:
            machine = self.machine
            success = self.success
            self.engine._recycle_flight(self)
            machine._attempt_end(success, False)
            return
        # Mirror: the forward process's completion event (delay-0 pop).
        # Tail position: _returned's caller chain ends here.
        self.tail0(self._completion_cb)

    # -- deadline race (mirror of _forward_with_deadline) -------------- #

    def _completion(self) -> None:
        """The forward "process completion" pop: may trigger the any-of."""
        self.call_processed = True
        if not self.anyof_triggered:
            self.anyof_triggered = True
            self.tail0(self._anyof_cb)
        # else: the deadline already triggered the race — this pop is the
        # abandoned call's side-effect-free completion, as in the
        # generator engine.

    def _deadline(self) -> None:
        """The deadline timeout pop: may trigger the any-of."""
        if not self.anyof_triggered:
            self.anyof_triggered = True
            self.tail0(self._anyof_cb)

    def _anyof(self) -> None:
        """The AnyOf pop: resume the machine with the race outcome.

        Runs exactly once per raced attempt. If the completion hop has
        been processed the attempt succeeded/failed on its own; otherwise
        the deadline won and the flight is abandoned — it keeps running
        (occupying the replica) but reports to nobody.
        """
        machine = self.machine
        self.machine = None
        if self.call_processed:
            machine._attempt_end(self.success, False)
        else:
            machine.proxy.timeouts += 1
            machine._attempt_end(False, True)


# The flight implementation an engine builds in _flight(); the vector
# engine swaps in _VectorFlight. A class attribute (not a constructor
# argument) so subclasses stay one line.
FastRequestEngine.flight_class = _Flight


class _VectorFlight(_Flight):
    """A flight whose service draws come from a per-replica z-bank.

    Only ``_acquired`` differs from :class:`_Flight`: replicas whose
    stream is bankable (constant-zero failure probability — see
    :func:`repro.sim.vectorpath.bankable_profile`) take their lognormal
    z from the replica's :class:`~repro.sim.vectorpath.ZQueue` instead of
    running the scalar rejection loop; everything else falls back to the
    scalar sampler so mixed fleets stay correct.
    """

    __slots__ = ()

    def _acquired(self) -> None:
        sim = self.sim
        ctx = self.ctx
        if self.queue_span is not None:
            ctx.end(self.queue_span, sim.now)
            self.queue_span = None
        replica = self.replica
        if not replica.up:
            self._begin_down(holding_slot=True)
            return
        now = sim.now
        profile = replica.profile
        if ctx is not None:
            self.exec_span = ctx.start(
                trace_model.SERVER_EXEC, trace_model.SERVER, now,
                attributes={"replica": replica.name})
        zqueue = self.engine._zqueue_for(replica)
        if zqueue is not None:
            # Bankable: sample_failure would return False without a
            # draw, so the success path is unconditional.
            self.sched(
                vectorpath.zqueue_service_time(profile, zqueue, now)
                * replica.service_time_scale,
                self._exec_ok_cb)
        elif profile.sample_failure(replica.rng, now):
            self.sched(profile.failure_latency_s, self._exec_failed_cb)
        else:
            self.sched(profile.sample_service_time(replica.rng, now)
                       * replica.service_time_scale,
                       self._exec_ok_cb)


class VectorRequestEngine(FastRequestEngine):
    """The numpy-chunked twin of :class:`FastRequestEngine`.

    Same event order, same records, same golden digest — the engine-
    level changes are purely in *how* the numbers are produced and
    accounted:

    * arrival gaps and service-time normals come from numpy block draws
      that are bit-identical to the scalar stream
      (:mod:`repro.sim.vectorpath`, RNG-transplant contract);
    * per-request telemetry buffers in plain lists and folds into the
      scraped counters/histograms in one numpy pass per scrape interval
      (:class:`~repro.sim.vectorpath.BufferedTelemetry`);
    * provably-next delay-0 hops at tail call positions run inline
      instead of round-tripping through the heap (:meth:`tail0`) —
      ``events_processed`` still counts them, keeping the events/sec
      accounting comparable with the fast engine.

    Requires numpy (the ``[fleet]`` extra); raises
    :class:`~repro.errors.ConfigError` at construction when it is
    missing or produces non-identical uniforms.
    """

    flight_class: type  # assigned below (class body can't see it yet)

    def __init__(self, sim, proxy, records: list, max_free: int = 512):
        vectorpath.require_numpy()
        vectorpath.assert_bit_identical()
        super().__init__(sim, proxy, records, max_free=max_free)
        self._heap = sim._heap
        # replica name -> ZQueue (bankable) or None (scalar fallback).
        self._zqueues: dict[str, object] = {}
        self._buffers: list = []
        # Delay-0 hops run inline by tail0 instead of popped from the
        # heap. The simulator's run loop tracks pops in a local and
        # writes events_processed back only when it returns, so inline
        # hops are counted here and added by readers (the coordinator)
        # to keep events/sec comparable with the fast engine.
        self.inlined_hops = 0

    # -- draws ---------------------------------------------------------- #

    def _zqueue_for(self, replica):
        found = self._zqueues.get(replica.name, _UNSET)
        if found is _UNSET:
            if vectorpath.bankable_profile(replica.profile):
                found = vectorpath.ZQueue(replica.rng)
            else:
                found = None
            self._zqueues[replica.name] = found
        return found

    def make_gap_sampler(self, loadgen):
        """A banked-uniform Poisson gap sampler for ``_FastArrivals``.

        Returns None for arrival modes that draw nothing (uniform), in
        which case the caller keeps the loadgen's scalar ``_gap``.
        """
        if loadgen.arrival != "poisson":
            return None
        bank = vectorpath.UniformBank(loadgen.rng)
        series = loadgen.rps

        def gap(now, _next=bank.next, _log=math.log):
            rate = (series._values[0] if series._constant
                    else series.value_at(now))
            if rate < 1e-9:
                rate = 1e-9
            # Mirror of random.Random.expovariate.
            return -_log(1.0 - _next()) / rate

        return gap

    # -- telemetry chunking --------------------------------------------- #

    def _resolve(self, backend_name: str) -> tuple:
        found = self._targets.get(backend_name)
        if found is None:
            backend, target_cluster, telemetry = super()._resolve(
                backend_name)
            buffered = vectorpath.BufferedTelemetry(telemetry)
            self._buffers.append(buffered)
            found = (backend, target_cluster, buffered)
            self._targets[backend_name] = found
        return found

    def flush_telemetry(self) -> None:
        """Fold every buffered chunk into the scraped telemetry."""
        for buffered in self._buffers:
            buffered.flush()

    def attach_scraper(self, scraper) -> None:
        """Flush chunks right before every scrape (the chunk boundary)."""
        scraper.pre_scrape = self.flush_telemetry

    def finalize(self) -> None:
        """Flush the last partial chunk and release banked rng streams."""
        self.flush_telemetry()
        for zqueue in self._zqueues.values():
            if zqueue is not None:
                zqueue.release()

    # -- inline tail hops ------------------------------------------------ #

    def tail0(self, cb) -> None:
        heap = self._heap
        if heap and heap[0][0] <= self.sim._now:
            # An already-queued event shares this timestamp and would pop
            # first; keep the heap round-trip to preserve order.
            self.sched(0.0, cb)
        else:
            # The hop would pop immediately next: run it inline. Counted
            # so events_processed matches the fast engine exactly.
            self.inlined_hops += 1
            cb()


_UNSET = object()
VectorRequestEngine.flight_class = _VectorFlight
