"""Services and their per-cluster deployments (backends).

A *service* is a logical name; a *backend* is its deployment in one
cluster (the unit between which TrafficSplits shift traffic). Within a
backend, the in-cluster balancer distributes across replicas round-robin —
the multi-cluster algorithms under study only decide *which cluster*.
"""

from __future__ import annotations

from repro.errors import ConfigError, MeshError
from repro.mesh.cluster import backend_name
from repro.mesh.replica import Replica
from repro.sim.engine import Simulator
from repro.workloads.profiles import BackendProfile


class Backend:
    """A service's deployment in one cluster: a set of replicas."""

    __slots__ = ("sim", "service", "cluster", "name", "profile",
                 "_rng_registry", "_replica_capacity", "_next_replica_id",
                 "_rr_index", "replicas")

    def __init__(self, sim: Simulator, service: str, cluster: str,
                 profile: BackendProfile, rng_registry,
                 replicas: int = 3, replica_capacity: int = 64):
        if replicas < 1:
            raise ConfigError(f"backend needs >= 1 replicas: {replicas}")
        self.sim = sim
        self.service = service
        self.cluster = cluster
        self.name = backend_name(service, cluster)
        self.profile = profile
        self._rng_registry = rng_registry
        self._replica_capacity = replica_capacity
        self._next_replica_id = 0
        self._rr_index = 0
        self.replicas: list[Replica] = []
        for _ in range(replicas):
            self.add_replica()

    def add_replica(self) -> Replica:
        """Scale up by one replica (used by the autoscaler extension)."""
        replica_id = self._next_replica_id
        self._next_replica_id += 1
        replica = Replica(
            self.sim, f"{self.name}/{replica_id}", self.profile,
            self._rng_registry.stream(f"replica/{self.name}/{replica_id}"),
            capacity=self._replica_capacity)
        self.replicas.append(replica)
        return replica

    def remove_replica(self) -> None:
        """Scale down by one replica; the last replica never goes away."""
        if len(self.replicas) <= 1:
            raise MeshError(f"cannot remove last replica of {self.name}")
        self.replicas.pop()

    def pick_replica(self) -> Replica:
        """In-cluster round-robin replica choice.

        Down replicas are skipped while any replica is up — the platform's
        readiness probes pull crashed pods out of the endpoint set. During
        a full outage every endpoint is dead and the request hits a down
        replica (failing fast or blackholing per its crash mode).
        """
        count = len(self.replicas)
        for _ in range(count):
            replica = self.replicas[self._rr_index % count]
            self._rr_index += 1
            if replica.up:
                return replica
        replica = self.replicas[self._rr_index % count]
        self._rr_index += 1
        return replica

    def crash(self, mode: str = "fail_fast") -> None:
        """Take every replica of this backend down (cluster outage)."""
        for replica in self.replicas:
            replica.crash(mode)

    def restart(self) -> None:
        """Bring every replica of this backend back up."""
        for replica in self.replicas:
            replica.restart()

    @property
    def up_replica_count(self) -> int:
        """Number of replicas currently up."""
        return sum(1 for replica in self.replicas if replica.up)

    @property
    def inflight(self) -> int:
        """Requests executing or queued across all replicas."""
        return sum(replica.inflight for replica in self.replicas)

    def handle(self, body=None, trace=None):
        """Serve one request on the next replica; returns success bool.

        ``trace`` is an optional :class:`~repro.tracing.recorder.
        TraceContext` (parented at the client's attempt span) under which
        the replica records its queue and execution spans.
        """
        replica = self.pick_replica()
        success = yield from replica.handle(body, trace=trace)
        return success


class ServiceDeployment:
    """A service with one backend per cluster."""

    def __init__(self, service: str):
        self.service = service
        self.backends: dict[str, Backend] = {}

    def add_backend(self, backend: Backend) -> None:
        """Attach a per-cluster backend; one backend per cluster."""
        if backend.service != self.service:
            raise MeshError(
                f"backend {backend.name} does not belong to {self.service}")
        if backend.cluster in self.backends:
            raise MeshError(f"duplicate backend cluster: {backend.cluster}")
        self.backends[backend.cluster] = backend

    def backend_in(self, cluster: str) -> Backend:
        """The deployment's backend in ``cluster`` (raises if absent)."""
        found = self.backends.get(cluster)
        if found is None:
            raise MeshError(
                f"service {self.service!r} has no backend in {cluster!r}")
        return found

    def backend_names(self) -> list[str]:
        """Stable (cluster-sorted) list of backend names."""
        return [self.backends[c].name for c in sorted(self.backends)]
