"""A single microservice replica: bounded concurrency plus a service-time
profile.

The replica is where load becomes latency: it executes at most ``capacity``
requests concurrently and queues the rest (FIFO), so a backend that
receives more traffic than it can absorb develops queueing delay — the
effect both Algorithm 1's in-flight term and Algorithm 2's rate controller
exist to manage.

Replicas can also *crash* (fault injection): a down replica either fails
requests fast (a connection refused / 503 from the platform) or blackholes
them (the pod vanished mid-connection and nothing answers), and restores on
:meth:`Replica.restart`.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.resources import Server
from repro.tracing import model as trace_model
from repro.workloads.profiles import BackendProfile

# What a down replica does with the requests that still reach it.
DOWN_MODES = ("fail_fast", "blackhole")


class Replica:
    """One replica (pod) of a service deployment in some cluster."""

    __slots__ = ("sim", "name", "profile", "rng", "server", "completed",
                 "failed", "up", "down_mode", "service_time_scale",
                 "_blackhole_gates")

    def __init__(self, sim: Simulator, name: str, profile: BackendProfile,
                 rng, capacity: int = 64):
        """Args:
            sim: owning simulator.
            name: replica identifier (e.g. ``"api/cluster-1/0"``).
            profile: time-varying service-time/failure behaviour.
            rng: this replica's private random stream.
            capacity: concurrent requests executed without queueing.
        """
        if capacity < 1:
            raise ConfigError(f"replica capacity must be >= 1: {capacity}")
        self.sim = sim
        self.name = name
        self.profile = profile
        self.rng = rng
        self.server = Server(sim, capacity)
        self.completed = 0
        self.failed = 0
        self.up = True
        self.down_mode = "fail_fast"
        # Service-rate dial: sampled service times are multiplied by this.
        # 1.0 (the default) is an IEEE-exact identity, so steady-state
        # replicas are bit-identical with or without the dial; a replica
        # still warming up after an autoscale launch runs slower (> 1.0)
        # until its cold-start ramp completes (repro.autoscale.targets).
        self.service_time_scale = 1.0
        # Requests hung on a blackholed replica; released (as failures)
        # when the replica restarts.
        self._blackhole_gates: list = []

    @property
    def inflight(self) -> int:
        """Requests currently executing or queued on this replica."""
        return self.server.in_use + self.server.queue_len

    def crash(self, mode: str = "fail_fast") -> None:
        """Take the replica down.

        Args:
            mode: ``"fail_fast"`` — requests fail after the profile's
                failure latency (connection refused); ``"blackhole"`` —
                requests hang until the replica restarts (or, without a
                client-side timeout, forever).
        """
        if mode not in DOWN_MODES:
            raise ConfigError(
                f"down mode must be one of {DOWN_MODES}: {mode!r}")
        self.up = False
        self.down_mode = mode

    def restart(self) -> None:
        """Bring the replica back up.

        Requests hung on the blackhole die now (their connection was to the
        old pod) — they resume immediately as failures, freeing the client.
        """
        self.up = True
        gates, self._blackhole_gates = self._blackhole_gates, []
        for gate in gates:
            gate.succeed()

    def handle(self, body=None, trace=None):
        """Process one request; yields until done, returns success bool.

        The failure decision is drawn when execution *starts* (a failing
        service fails whatever it touches, whether or not the request
        queued first). Failed requests occupy the replica for the
        profile's failure latency — errors are typically fast.

        Args:
            body: optional generator *function* executed after the
                replica's own compute time while still holding the server
                slot (thread-per-request semantics); used by call-graph
                applications to invoke downstream services. Its boolean
                return value is ANDed into the request's success.
            trace: optional :class:`~repro.tracing.recorder.TraceContext`
                under which the replica records a ``server.queue`` span
                (waiting for a slot) and a ``server.exec`` span (running)
                — the queue-vs-execution split the critical-path report
                needs to tell saturation from slowness.
        """
        if not self.up:
            yield from self._handle_down(trace)
            return False
        queue_span = None
        if trace is not None:
            queue_span = trace.start(
                trace_model.SERVER_QUEUE, trace_model.SERVER, self.sim.now,
                attributes={"replica": self.name})
        yield self.server.acquire()
        if queue_span is not None:
            trace.end(queue_span, self.sim.now)
        try:
            if not self.up:
                # Crashed while this request sat in the queue: the queued
                # connections die with the pod (the slot is held meanwhile,
                # as a hung worker would hold it).
                yield from self._handle_down(trace)
                return False
            now = self.sim.now
            exec_span = None
            if trace is not None:
                exec_span = trace.start(
                    trace_model.SERVER_EXEC, trace_model.SERVER, now,
                    attributes={"replica": self.name})
            if self.profile.sample_failure(self.rng, now):
                yield self.sim.timeout(self.profile.failure_latency_s)
                self.failed += 1
                if exec_span is not None:
                    trace.end(exec_span, self.sim.now,
                              status=trace_model.ERROR)
                return False
            service_time = (self.profile.sample_service_time(self.rng, now)
                            * self.service_time_scale)
            yield self.sim.timeout(service_time)
            success = True
            if body is not None:
                body_ok = yield from body()
                success = bool(body_ok) if body_ok is not None else True
            if success:
                self.completed += 1
            else:
                self.failed += 1
            if exec_span is not None:
                trace.end(exec_span, self.sim.now,
                          status=trace_model.OK if success
                          else trace_model.ERROR)
            return success
        finally:
            self.server.release()

    def _handle_down(self, trace=None):
        """One request against a down replica; always ends in failure.

        Fail-fast mode answers with the profile's failure latency (an error
        response is still a response); blackhole mode parks the request on
        a gate that fires only at restart — without a client-side timeout
        the caller hangs for as long as the replica stays down.
        """
        span = None
        if trace is not None:
            span = trace.start(
                trace_model.SERVER_EXEC, trace_model.SERVER, self.sim.now,
                attributes={"replica": self.name,
                            "down": self.down_mode})
        if self.down_mode == "blackhole":
            gate = self.sim.event()
            self._blackhole_gates.append(gate)
            yield gate
        else:
            yield self.sim.timeout(self.profile.failure_latency_s)
        self.failed += 1
        if span is not None:
            trace.end(span, self.sim.now, status=trace_model.ERROR)
        return True
