"""A single microservice replica: bounded concurrency plus a service-time
profile.

The replica is where load becomes latency: it executes at most ``capacity``
requests concurrently and queues the rest (FIFO), so a backend that
receives more traffic than it can absorb develops queueing delay — the
effect both Algorithm 1's in-flight term and Algorithm 2's rate controller
exist to manage.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.resources import Server
from repro.workloads.profiles import BackendProfile


class Replica:
    """One replica (pod) of a service deployment in some cluster."""

    def __init__(self, sim: Simulator, name: str, profile: BackendProfile,
                 rng, capacity: int = 64):
        """Args:
            sim: owning simulator.
            name: replica identifier (e.g. ``"api/cluster-1/0"``).
            profile: time-varying service-time/failure behaviour.
            rng: this replica's private random stream.
            capacity: concurrent requests executed without queueing.
        """
        if capacity < 1:
            raise ConfigError(f"replica capacity must be >= 1: {capacity}")
        self.sim = sim
        self.name = name
        self.profile = profile
        self.rng = rng
        self.server = Server(sim, capacity)
        self.completed = 0
        self.failed = 0

    @property
    def inflight(self) -> int:
        """Requests currently executing or queued on this replica."""
        return self.server.in_use + self.server.queue_len

    def handle(self, body=None):
        """Process one request; yields until done, returns success bool.

        The failure decision is drawn when execution *starts* (a failing
        service fails whatever it touches, whether or not the request
        queued first). Failed requests occupy the replica for the
        profile's failure latency — errors are typically fast.

        Args:
            body: optional generator *function* executed after the
                replica's own compute time while still holding the server
                slot (thread-per-request semantics); used by call-graph
                applications to invoke downstream services. Its boolean
                return value is ANDed into the request's success.
        """
        yield self.server.acquire()
        try:
            now = self.sim.now
            if self.profile.sample_failure(self.rng, now):
                yield self.sim.timeout(self.profile.failure_latency_s)
                self.failed += 1
                return False
            service_time = self.profile.sample_service_time(self.rng, now)
            yield self.sim.timeout(service_time)
            success = True
            if body is not None:
                body_ok = yield from body()
                success = bool(body_ok) if body_ok is not None else True
            if success:
                self.completed += 1
            else:
                self.failed += 1
            return success
        finally:
            self.server.release()
