"""WAN latency model between clusters.

The paper's clusters (Frankfurt/Paris/Milan) see ~10 ms inter-cluster
delay; §2.1 stresses that WAN latency varies over time (shifting routing
paths, transient congestion). A :class:`WanLink` therefore combines a base
one-way delay, multiplicative log-normal jitter, a slow sinusoidal drift
and rare spike episodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.rng import NV_MAGICCONST, Z_P99


@dataclass(frozen=True)
class WanLink:
    """One-way delay model for a directed cluster pair.

    Attributes:
        base_delay_s: median one-way delay.
        jitter_p99_ratio: P99/median ratio of the per-packet log-normal
            jitter (1.0 disables jitter).
        drift_amplitude: fraction of the base delay added/removed by a slow
            sinusoidal drift (models route changes; 0 disables).
        drift_period_s: period of the drift sinusoid.
        spike_prob: per-request probability of hitting a transient spike.
        spike_multiplier: delay multiplier during a spike.
    """

    base_delay_s: float
    jitter_p99_ratio: float = 1.5
    drift_amplitude: float = 0.1
    drift_period_s: float = 120.0
    spike_prob: float = 0.001
    spike_multiplier: float = 5.0

    def __post_init__(self):
        if self.base_delay_s < 0:
            raise ConfigError(f"negative base delay: {self.base_delay_s}")
        if self.jitter_p99_ratio < 1.0:
            raise ConfigError(
                f"jitter P99 ratio must be >= 1: {self.jitter_p99_ratio}")
        if not 0.0 <= self.drift_amplitude < 1.0:
            raise ConfigError(
                f"drift amplitude must be in [0, 1): {self.drift_amplitude}")
        if self.drift_period_s <= 0:
            raise ConfigError(f"drift period must be > 0: {self.drift_period_s}")
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ConfigError(f"spike prob must be in [0, 1]: {self.spike_prob}")
        if self.spike_multiplier < 1.0:
            raise ConfigError(
                f"spike multiplier must be >= 1: {self.spike_multiplier}")

    def delay(self, rng, now: float) -> float:
        """Sample the one-way delay for a request sent at ``now``."""
        if self.base_delay_s == 0.0:
            return 0.0
        drift = 1.0 + self.drift_amplitude * math.sin(
            2.0 * math.pi * now / self.drift_period_s)
        median = self.base_delay_s * drift
        if self.jitter_p99_ratio > 1.0:
            # sample_lognormal() inlined (two WAN legs per request make
            # this a hot path); the float operations are kept in the
            # exact same order so the draws stay bit-identical.
            mu = math.log(median)
            sigma = (math.log(median * self.jitter_p99_ratio) - mu) / Z_P99
            delay = rng.lognormvariate(mu, sigma)
        else:
            delay = median
        if self.spike_prob > 0.0 and rng.random() < self.spike_prob:
            delay *= self.spike_multiplier
        return delay


# In-cluster hop: pod-to-pod within one Kubernetes cluster.
LOCAL_LINK = WanLink(base_delay_s=0.0002, jitter_p99_ratio=2.0,
                     drift_amplitude=0.0, spike_prob=0.0)


class NetworkModel:
    """All pairwise delays of the multi-cluster topology.

    Besides the static link models, the network carries a *fault overlay*
    (driven by :mod:`repro.faults`): a directed pair can be partitioned —
    :meth:`delay` returns ``inf``, which the proxy treats as a blackhole —
    or degraded, multiplying and/or padding the sampled delay for the
    duration of the episode.
    """

    def __init__(self, clusters, default_wan: WanLink | None = None,
                 local_link: WanLink = LOCAL_LINK):
        """Create a full mesh over ``clusters``.

        Args:
            clusters: iterable of cluster names.
            default_wan: link used for every inter-cluster pair unless
                overridden; defaults to the paper's ~10 ms one-way delay.
            local_link: link used within a cluster.
        """
        names = list(clusters)
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate cluster names: {names}")
        if default_wan is None:
            default_wan = WanLink(base_delay_s=0.010)
        self.clusters = names
        self._links: dict[tuple[str, str], WanLink] = {}
        self._partitions: set[tuple[str, str]] = set()
        # (src, dst) -> (delay multiplier, extra delay seconds)
        self._degradations: dict[tuple[str, str], tuple[float, float]] = {}
        for src in names:
            for dst in names:
                self._links[(src, dst)] = (
                    local_link if src == dst else default_wan)

    def set_link(self, src: str, dst: str, link: WanLink,
                 symmetric: bool = True) -> None:
        """Override the link for a cluster pair."""
        self._require(src), self._require(dst)
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def link(self, src: str, dst: str) -> WanLink:
        """The link used from ``src`` to ``dst``."""
        self._require(src), self._require(dst)
        return self._links[(src, dst)]

    def delay(self, src: str, dst: str, rng, now: float) -> float:
        """Sample the one-way delay from ``src`` to ``dst`` at ``now``.

        Returns ``inf`` while the directed pair is partitioned (packets
        never arrive — callers must treat an infinite delay as a blackhole,
        not something to sleep through).
        """
        if self._partitions and (src, dst) in self._partitions:
            return math.inf
        # Direct link lookup — this runs twice per request, and the
        # membership validation of link() is a linear scan. Unknown
        # clusters still fail the same way: they can never be keys.
        link = self._links.get((src, dst))
        if link is None:
            self._require(src), self._require(dst)
        # WanLink.delay() inlined (two WAN legs per request), including
        # the stdlib lognormvariate / normalvariate rejection loop —
        # three Python frames per sampled leg otherwise. Every float
        # operation is kept in the exact order of the out-of-line
        # versions so the draws stay bit-identical (the equivalence and
        # golden-digest tests pin this down).
        base = link.base_delay_s
        if base == 0.0:
            delay = 0.0
        else:
            drift = 1.0 + link.drift_amplitude * math.sin(
                2.0 * math.pi * now / link.drift_period_s)
            median = base * drift
            if link.jitter_p99_ratio > 1.0:
                mu = math.log(median)
                sigma = (math.log(median * link.jitter_p99_ratio) - mu) / Z_P99
                rand = rng.random
                while True:
                    u1 = rand()
                    u2 = 1.0 - rand()
                    z = NV_MAGICCONST * (u1 - 0.5) / u2
                    if z * z / 4.0 <= -math.log(u2):
                        break
                delay = math.exp(mu + z * sigma)
            else:
                delay = median
            if link.spike_prob > 0.0 and rng.random() < link.spike_prob:
                delay *= link.spike_multiplier
        if self._degradations:
            degradation = self._degradations.get((src, dst))
            if degradation is not None:
                multiplier, extra_s = degradation
                delay = delay * multiplier + extra_s
        return delay

    # ------------------------------------------------------------------ #
    # Fault overlay (driven by repro.faults)
    # ------------------------------------------------------------------ #

    def partition(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Drop all traffic from ``src`` to ``dst`` until healed."""
        self._require(src), self._require(dst)
        self._partitions.add((src, dst))
        if symmetric:
            self._partitions.add((dst, src))

    def heal_partition(self, src: str, dst: str,
                       symmetric: bool = True) -> None:
        """Remove a partition (missing partitions are forgiven)."""
        self._require(src), self._require(dst)
        self._partitions.discard((src, dst))
        if symmetric:
            self._partitions.discard((dst, src))

    def is_partitioned(self, src: str, dst: str) -> bool:
        """Whether traffic from ``src`` to ``dst`` is currently dropped."""
        return (src, dst) in self._partitions

    def degrade(self, src: str, dst: str, multiplier: float = 1.0,
                extra_delay_s: float = 0.0, symmetric: bool = True) -> None:
        """Inflate the pair's delay: ``delay * multiplier + extra_delay_s``."""
        if multiplier < 1.0:
            raise ConfigError(
                f"degradation multiplier must be >= 1: {multiplier}")
        if extra_delay_s < 0:
            raise ConfigError(
                f"degradation extra delay must be >= 0: {extra_delay_s}")
        self._require(src), self._require(dst)
        self._degradations[(src, dst)] = (multiplier, extra_delay_s)
        if symmetric:
            self._degradations[(dst, src)] = (multiplier, extra_delay_s)

    def heal_degradation(self, src: str, dst: str,
                         symmetric: bool = True) -> None:
        """Remove a degradation (missing degradations are forgiven)."""
        self._require(src), self._require(dst)
        self._degradations.pop((src, dst), None)
        if symmetric:
            self._degradations.pop((dst, src), None)

    def _require(self, name: str) -> None:
        if name not in self.clusters:
            raise ConfigError(f"unknown cluster: {name!r}")
