"""The client-side sidecar proxy.

Every outgoing request of a client (or upstream microservice) passes
through its cluster-local proxy, which (1) asks the configured balancer for
a backend, (2) adds the proxy's own small forwarding overhead, (3) crosses
the network to the chosen backend's cluster, (4) waits for the replica, and
(5) records data-plane telemetry on completion — exactly the vantage point
from which L3's metrics are collected (latency as perceived by the
*client-side* proxy, including WAN and queueing).
"""

from __future__ import annotations

import itertools

from repro.balancers.base import Balancer
from repro.errors import MeshError
from repro.mesh.cluster import split_backend_name
from repro.mesh.request import RequestRecord
from repro.telemetry.metrics import BackendTelemetry


class ClientProxy:
    """Routes one service's outgoing traffic from one source cluster."""

    def __init__(self, mesh, source_cluster: str, service: str,
                 balancer: Balancer, rng,
                 forward_overhead_s: float = 0.0002,
                 max_retries: int = 0, retry_backoff_s: float = 0.0):
        """Args:
            mesh: the owning :class:`~repro.mesh.mesh.ServiceMesh`.
            source_cluster: cluster this proxy lives in.
            service: the destination service this proxy routes to.
            balancer: backend-selection policy.
            rng: private random stream (weighted picks, network jitter).
            forward_overhead_s: per-request proxy forwarding cost.
            max_retries: client retries on failed responses (0 reproduces
                the paper's benchmarks, which do not retry — §5.2.1; the
                retry model is what Eq. 3's penalty factor assumes).
            retry_backoff_s: fixed delay before each retry attempt.
        """
        if max_retries < 0:
            raise MeshError(f"max retries must be >= 0: {max_retries}")
        if retry_backoff_s < 0:
            raise MeshError(f"retry backoff must be >= 0: {retry_backoff_s}")
        self.mesh = mesh
        self.source_cluster = source_cluster
        self.service = service
        self.balancer = balancer
        self.rng = rng
        self.forward_overhead_s = forward_overhead_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self._request_ids = itertools.count()
        deployment = mesh.deployment(service)
        # Telemetry is scoped by source cluster: each cluster's controller
        # must see latency from its own vantage point (a remote backend is
        # slow *from here*, fast from its own cluster).
        self.telemetry: dict[str, BackendTelemetry] = {
            name: BackendTelemetry(
                name, scrape_name=f"{source_cluster}|{name}")
            for name in deployment.backend_names()
        }

    def dispatch(self, intended_start_s: float | None = None,
                 body_factory=None):
        """Process one request end to end; returns a :class:`RequestRecord`.

        This is a simulation generator — drive it with ``sim.spawn`` or
        ``yield from`` inside another process.

        Args:
            intended_start_s: open-loop schedule time latency is measured
                from (defaults to now).
            body_factory: optional ``f(target_cluster) -> generator
                function`` supplying the service body executed on the
                chosen replica (call-graph applications use this to run
                downstream calls from the backend's own cluster).
        """
        sim = self.mesh.sim
        start = sim.now
        if intended_start_s is None:
            intended_start_s = start

        attempts = 0
        while True:
            attempts += 1
            success, backend_name = yield from self._attempt(body_factory)
            if success or attempts > self.max_retries:
                break
            if self.retry_backoff_s > 0:
                yield sim.timeout(self.retry_backoff_s)

        return RequestRecord(
            request_id=next(self._request_ids),
            service=self.service,
            source_cluster=self.source_cluster,
            backend=backend_name,
            intended_start_s=intended_start_s,
            start_s=start,
            end_s=sim.now,
            success=success,
            attempts=attempts,
        )

    def _attempt(self, body_factory):
        """One request attempt; returns ``(success, backend_name)``.

        Each attempt is a fresh balancer decision and is individually
        recorded in the data-plane telemetry — exactly what a per-try
        proxy sees, and what makes retried failures visible to L3's
        success-rate signal.
        """
        sim = self.mesh.sim
        start = sim.now
        backend_name = self.balancer.pick(self.rng, start)
        telemetry = self.telemetry.get(backend_name)
        if telemetry is None:
            raise MeshError(
                f"balancer picked unknown backend {backend_name!r} "
                f"for service {self.service!r}")
        _service, target_cluster = split_backend_name(backend_name)
        backend = self.mesh.deployment(self.service).backend_in(target_cluster)

        telemetry.on_request_sent()
        self.balancer.on_request_sent(backend_name, start)

        if self.forward_overhead_s > 0:
            yield sim.timeout(self.forward_overhead_s)
        outbound = self.mesh.network.delay(
            self.source_cluster, target_cluster, self.rng, sim.now)
        if outbound > 0:
            yield sim.timeout(outbound)

        body = body_factory(target_cluster) if body_factory else None
        success = yield from backend.handle(body)

        inbound = self.mesh.network.delay(
            target_cluster, self.source_cluster, self.rng, sim.now)
        if inbound > 0:
            yield sim.timeout(inbound)

        latency = sim.now - start
        telemetry.on_response(latency, success)
        self.balancer.on_response(backend_name, sim.now, latency, success)
        return success, backend_name
