"""The client-side sidecar proxy.

Every outgoing request of a client (or upstream microservice) passes
through its cluster-local proxy, which (1) asks the configured balancer for
a backend, (2) adds the proxy's own small forwarding overhead, (3) crosses
the network to the chosen backend's cluster, (4) waits for the replica, and
(5) records data-plane telemetry on completion — exactly the vantage point
from which L3's metrics are collected (latency as perceived by the
*client-side* proxy, including WAN and queueing).

Resilience knobs (both off by default, preserving the paper's evaluated
configuration):

* ``request_timeout_s`` — a per-attempt deadline. Without it, a blackholed
  backend (crashed pod, network partition) hangs the request forever; with
  it, the attempt is abandoned at the deadline and recorded as a *failed*
  attempt in telemetry, so L3's success-rate signal sees the outage.
* ``outlier_ejection`` — consecutive-failure circuit breaking with
  half-open probing (see :mod:`repro.mesh.ejection`).

When the owning mesh carries a tracer (``mesh.tracer``, a
:class:`~repro.tracing.recorder.MeshTracer`), the proxy emits one root
``request`` span per dispatch and one ``attempt`` span per try, with the
WAN legs, server queue/execution, retry back-offs, deadline expiries and
outlier-ejection skips recorded as children — the span vocabulary of
:mod:`repro.tracing.model`. Without a tracer (the default) the only cost
is one ``None`` check per request.
"""

from __future__ import annotations

import itertools
import math

from repro.balancers.base import Balancer
from repro.errors import MeshError
from repro.mesh.cluster import split_backend_name
from repro.mesh.ejection import OutlierEjectionConfig, OutlierEjector
from repro.mesh.request import RequestRecord
from repro.telemetry.metrics import BackendTelemetry
# Span name/kind vocabulary only — repro.tracing.model has no mesh
# dependencies, so the data plane stays import-cycle free.
from repro.tracing import model as trace_model


class ClientProxy:
    """Routes one service's outgoing traffic from one source cluster."""

    def __init__(self, mesh, source_cluster: str, service: str,
                 balancer: Balancer, rng,
                 forward_overhead_s: float = 0.0002,
                 max_retries: int = 0, retry_backoff_s: float = 0.0,
                 request_timeout_s: float | None = None,
                 outlier_ejection: OutlierEjectionConfig | None = None):
        """Args:
            mesh: the owning :class:`~repro.mesh.mesh.ServiceMesh`.
            source_cluster: cluster this proxy lives in.
            service: the destination service this proxy routes to.
            balancer: backend-selection policy.
            rng: private random stream (weighted picks, network jitter).
            forward_overhead_s: per-request proxy forwarding cost.
            max_retries: client retries on failed responses (0 reproduces
                the paper's benchmarks, which do not retry — §5.2.1; the
                retry model is what Eq. 3's penalty factor assumes).
            retry_backoff_s: fixed delay before each retry attempt.
            request_timeout_s: per-attempt deadline; ``None`` (the paper's
                setup) waits forever.
            outlier_ejection: circuit-breaker tunables; ``None`` (the
                paper's setup) disables ejection.
        """
        if max_retries < 0:
            raise MeshError(f"max retries must be >= 0: {max_retries}")
        if retry_backoff_s < 0:
            raise MeshError(f"retry backoff must be >= 0: {retry_backoff_s}")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise MeshError(
                f"request timeout must be positive: {request_timeout_s}")
        self.mesh = mesh
        self.source_cluster = source_cluster
        self.service = service
        self.balancer = balancer
        self.rng = rng
        self.forward_overhead_s = forward_overhead_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.request_timeout_s = request_timeout_s
        self.timeouts = 0
        self._request_ids = itertools.count()
        deployment = mesh.deployment(service)
        # Telemetry is scoped by source cluster: each cluster's controller
        # must see latency from its own vantage point (a remote backend is
        # slow *from here*, fast from its own cluster).
        self.telemetry: dict[str, BackendTelemetry] = {
            name: BackendTelemetry(
                name, scrape_name=f"{source_cluster}|{name}")
            for name in deployment.backend_names()
        }
        self.ejector: OutlierEjector | None = None
        if outlier_ejection is not None:
            self.ejector = OutlierEjector(
                list(self.telemetry), outlier_ejection)

    def dispatch(self, intended_start_s: float | None = None,
                 body_factory=None):
        """Process one request end to end; returns a :class:`RequestRecord`.

        This is a simulation generator — drive it with ``sim.spawn`` or
        ``yield from`` inside another process.

        Args:
            intended_start_s: open-loop schedule time latency is measured
                from (defaults to now).
            body_factory: optional ``f(target_cluster) -> generator
                function`` supplying the service body executed on the
                chosen replica (call-graph applications use this to run
                downstream calls from the backend's own cluster).
        """
        sim = self.mesh.sim
        start = sim.now
        if intended_start_s is None:
            intended_start_s = start
        request_id = next(self._request_ids)

        tracer = self.mesh.tracer
        ctx = tracer.trace() if tracer is not None else None
        root = None
        if ctx is not None:
            root = ctx.start(
                trace_model.REQUEST, trace_model.CLIENT, intended_start_s,
                attributes={
                    "request_id": request_id,
                    "service": self.service,
                    "source_cluster": self.source_cluster,
                })
            ctx = ctx.child(root)

        attempts = 0
        while True:
            attempts += 1
            success, backend_name = yield from self._attempt(
                body_factory, ctx, attempts)
            if success or attempts > self.max_retries:
                break
            if self.retry_backoff_s > 0:
                if ctx is not None:
                    backoff = ctx.start(trace_model.RETRY_BACKOFF,
                                        trace_model.CLIENT, sim.now)
                    yield sim.timeout(self.retry_backoff_s)
                    ctx.end(backoff, sim.now)
                else:
                    yield sim.timeout(self.retry_backoff_s)

        if root is not None:
            root.attributes["attempts"] = attempts
            root.attributes["backend"] = backend_name
            ctx.end(root, sim.now,
                    status=trace_model.OK if success else trace_model.ERROR)

        return RequestRecord(
            request_id=request_id,
            service=self.service,
            source_cluster=self.source_cluster,
            backend=backend_name,
            intended_start_s=intended_start_s,
            start_s=start,
            end_s=sim.now,
            success=success,
            attempts=attempts,
        )

    def _attempt(self, body_factory, ctx=None, attempt_no: int = 1):
        """One request attempt; returns ``(success, backend_name)``.

        Each attempt is a fresh balancer decision and is individually
        recorded in the data-plane telemetry — exactly what a per-try
        proxy sees, and what makes retried failures visible to L3's
        success-rate signal. With tracing on, each attempt is one span
        carrying the chosen backend, any ejection skips, and the
        controller decision id that produced the routing weights.
        """
        sim = self.mesh.sim
        start = sim.now
        backend_name, ejection_skips = self._pick_backend(start)
        telemetry = self.telemetry.get(backend_name)
        if telemetry is None:
            raise MeshError(
                f"balancer picked unknown backend {backend_name!r} "
                f"for service {self.service!r}")
        _service, target_cluster = split_backend_name(backend_name)
        backend = self.mesh.deployment(self.service).backend_in(target_cluster)

        span = None
        if ctx is not None:
            attributes = {"backend": backend_name, "attempt": attempt_no}
            if ejection_skips:
                attributes["ejection.skips"] = ejection_skips
            audit = ctx.tracer.audit
            if audit is not None:
                attributes["decision_id"] = audit.last_decision_id
            span = ctx.start(trace_model.ATTEMPT, trace_model.CLIENT,
                             start, attributes=attributes)
            ctx = ctx.child(span)

        telemetry.on_request_sent()
        self.balancer.on_request_sent(backend_name, start)

        if self.forward_overhead_s > 0:
            yield sim.timeout(self.forward_overhead_s)

        timed_out = False
        if self.request_timeout_s is None:
            success = yield from self._forward(
                backend, target_cluster, body_factory, ctx)
        else:
            success, timed_out = yield from self._forward_with_deadline(
                backend, backend_name, target_cluster, body_factory, start,
                ctx)

        latency = sim.now - start
        telemetry.on_response(latency, success)
        self.balancer.on_response(backend_name, sim.now, latency, success)
        if self.ejector is not None:
            self.ejector.on_response(backend_name, sim.now, success)
        if span is not None:
            if timed_out:
                status = trace_model.TIMEOUT
            else:
                status = trace_model.OK if success else trace_model.ERROR
            ctx.end(span, sim.now, status=status)
        return success, backend_name

    def _pick_backend(self, now: float) -> tuple[str, int]:
        """Balancer pick, filtered through the outlier ejector if enabled.

        When the pick is ejected the balancer is asked again a bounded
        number of times; if every draw is ejected the proxy *fails open*
        and sends anyway — blackholing all traffic on the say-so of a local
        breaker would be worse than probing a possibly-dead backend.

        Returns ``(backend_name, ejection_skips)`` — the number of
        ejected draws that were passed over before this pick (surfaced
        on the attempt span so traces explain "why not the obvious
        backend").
        """
        backend_name = self.balancer.pick(self.rng, now)
        if self.ejector is None or self.ejector.admit(backend_name, now):
            return backend_name, 0
        skips = 1
        for _ in range(3 * len(self.telemetry)):
            candidate = self.balancer.pick(self.rng, now)
            if self.ejector.admit(candidate, now):
                return candidate, skips
            skips += 1
        return backend_name, skips

    def _wan_hop(self, ctx, name: str, src: str, dst: str):
        """One network leg: sample the delay, optionally traced.

        An infinite delay (partition) parks the request on a never-firing
        event — without a deadline the caller hangs, which is exactly what
        a blackholed TCP connection does (the open span is the trace's
        record of the hang).
        """
        sim = self.mesh.sim
        delay = self.mesh.network.delay(src, dst, self.rng, sim.now)
        span = None
        if ctx is not None:
            span = ctx.start(name, trace_model.NETWORK, sim.now,
                             attributes={"src": src, "dst": dst,
                                         "link": f"{src}->{dst}"})
        if math.isinf(delay):
            if span is not None:
                span.attributes["partitioned"] = True
            yield sim.event()
            return False  # pragma: no cover - the event never fires
        if delay > 0:
            yield sim.timeout(delay)
        if span is not None:
            ctx.end(span, sim.now)
        return True

    def _forward(self, backend, target_cluster: str, body_factory,
                 ctx=None):
        """The remote leg: network out, replica, network back."""
        sim = self.mesh.sim
        arrived = yield from self._wan_hop(
            ctx, trace_model.WAN_SEND, self.source_cluster, target_cluster)
        if not arrived:
            return False  # pragma: no cover - the event never fires

        body = body_factory(target_cluster) if body_factory else None
        success = yield from backend.handle(body, trace=ctx)

        returned = yield from self._wan_hop(
            ctx, trace_model.WAN_RECV, target_cluster, self.source_cluster)
        if not returned:
            return False  # pragma: no cover - the event never fires
        return success

    def _forward_with_deadline(self, backend, backend_name: str,
                               target_cluster: str, body_factory,
                               start: float, ctx=None):
        """Race the remote leg against the per-attempt deadline.

        On timeout the in-flight call is abandoned, not cancelled: whatever
        the server was doing keeps happening (and keeps occupying the
        replica), but this client stops waiting — the attempt is a failure.
        Returns ``(success, timed_out)``.
        """
        sim = self.mesh.sim
        remaining = self.request_timeout_s - (sim.now - start)
        if remaining <= 0:
            self.timeouts += 1
            return False, True
        call = sim.spawn(
            self._forward(backend, target_cluster, body_factory, ctx),
            name=f"fwd/{backend_name}")
        deadline = sim.timeout(remaining)
        yield sim.any_of([call, deadline])
        if call.processed and call.ok:
            return bool(call.value), False
        # The deadline won; the abandoned call's eventual failure (if any)
        # must not abort the run. Its spans stay open (the export skips
        # them) — the attempt span's "timeout" status is the record.
        call.defused = True
        self.timeouts += 1
        return False, True
