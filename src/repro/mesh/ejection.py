"""Consecutive-failure outlier ejection (circuit breaking) for the proxy.

Models Envoy/Linkerd-style passive health checking on the client sidecar:
a backend that fails ``consecutive_failures`` requests in a row is ejected
from the proxy's pick set for ``ejection_s`` seconds. When the ejection
expires the breaker goes *half-open*: exactly one probe request is let
through — success closes the breaker, failure re-ejects with exponential
backoff. Ejection is **off by default** everywhere: the paper's evaluated
system relies purely on L3's success-rate signal (§3.1), and enabling a
second, faster feedback loop changes the measured dynamics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

_CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half_open"


@dataclass(frozen=True)
class OutlierEjectionConfig:
    """Tunables of the per-backend circuit breaker.

    Attributes:
        consecutive_failures: failures in a row that trip the breaker.
        ejection_s: first ejection duration.
        backoff_multiplier: ejection duration growth on repeated trips.
        max_ejection_s: ejection duration ceiling.
    """

    consecutive_failures: int = 5
    ejection_s: float = 10.0
    backoff_multiplier: float = 2.0
    max_ejection_s: float = 60.0

    def __post_init__(self):
        if self.consecutive_failures < 1:
            raise ConfigError(
                "consecutive failures must be >= 1: "
                f"{self.consecutive_failures}")
        if self.ejection_s <= 0:
            raise ConfigError(
                f"ejection duration must be positive: {self.ejection_s}")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff multiplier must be >= 1: {self.backoff_multiplier}")
        if self.max_ejection_s < self.ejection_s:
            raise ConfigError(
                "max ejection must be >= the base ejection: "
                f"{self.max_ejection_s} < {self.ejection_s}")


class _BreakerState:
    """One backend's breaker: closed / open / half-open."""

    __slots__ = ("state", "failures", "ejected_until", "next_ejection_s",
                 "probe_inflight")

    def __init__(self, first_ejection_s: float):
        self.state = _CLOSED
        self.failures = 0
        self.ejected_until = -math.inf
        self.next_ejection_s = first_ejection_s
        self.probe_inflight = False


class OutlierEjector:
    """Tracks per-backend breakers for one client proxy.

    The proxy calls :meth:`admit` before sending (which may consume the
    half-open probe slot) and :meth:`on_response` on every completion.
    """

    def __init__(self, backend_names, config: OutlierEjectionConfig):
        self.config = config
        self._breakers = {
            name: _BreakerState(config.ejection_s) for name in backend_names
        }
        self.ejections = 0

    def _breaker(self, name: str) -> _BreakerState:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = _BreakerState(self.config.ejection_s)
            self._breakers[name] = breaker
        return breaker

    def is_ejected(self, name: str, now: float) -> bool:
        """Whether the backend is currently out of the pick set."""
        breaker = self._breaker(name)
        if breaker.state != _OPEN:
            return False
        return now < breaker.ejected_until or breaker.probe_inflight

    def admit(self, name: str, now: float) -> bool:
        """Whether a request may be sent to ``name`` right now.

        Mutating: when an expired ejection is first probed, this consumes
        the single half-open probe slot — callers must actually send the
        request when admitted.
        """
        breaker = self._breaker(name)
        if breaker.state == _CLOSED:
            return True
        if breaker.state == _OPEN:
            if now < breaker.ejected_until or breaker.probe_inflight:
                return False
            breaker.state = _HALF_OPEN
            breaker.probe_inflight = True
            return True
        # Half-open: only the in-flight probe is allowed.
        if breaker.probe_inflight:
            return False
        breaker.probe_inflight = True
        return True

    def on_response(self, name: str, now: float, success: bool) -> None:
        """Feed one completed request into the backend's breaker."""
        breaker = self._breaker(name)
        if breaker.state == _HALF_OPEN:
            breaker.probe_inflight = False
            if success:
                self._close(breaker)
            else:
                self._trip(breaker, now, backoff=True)
            return
        if breaker.state == _OPEN:
            # A response from before the ejection; the verdict is in.
            return
        if success:
            breaker.failures = 0
            return
        breaker.failures += 1
        if breaker.failures >= self.config.consecutive_failures:
            self._trip(breaker, now, backoff=False)

    def _trip(self, breaker: _BreakerState, now: float,
              backoff: bool) -> None:
        if backoff:
            # A failed half-open probe: the backend is still bad, so the
            # *this* ejection is already longer than the previous one.
            breaker.next_ejection_s = min(
                breaker.next_ejection_s * self.config.backoff_multiplier,
                self.config.max_ejection_s)
        breaker.state = _OPEN
        breaker.probe_inflight = False
        breaker.failures = 0
        breaker.ejected_until = now + breaker.next_ejection_s
        self.ejections += 1

    def _close(self, breaker: _BreakerState) -> None:
        breaker.state = _CLOSED
        breaker.failures = 0
        breaker.ejected_until = -math.inf
        breaker.next_ejection_s = self.config.ejection_s
