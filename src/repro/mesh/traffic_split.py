"""SMI-style TrafficSplit (paper §4).

A TrafficSplit maps a service to a set of backends with non-negative
integer weights; a backend with twice the weight receives twice the
traffic. Weight updates do not take effect instantly: the mesh control
plane must push new configuration to the affected sidecar proxies, modelled
as a fixed propagation delay.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right

from repro.errors import ConfigError, MeshError
from repro.sim.engine import Simulator


class TrafficSplit:
    """Weighted traffic distribution between a service's backends."""

    __slots__ = ("sim", "service", "propagation_delay_s", "_weights",
                 "_total", "_names", "_cum", "_generation",
                 "_applied_generation", "update_count")

    def __init__(self, sim: Simulator, service: str, backend_names,
                 propagation_delay_s: float = 0.5):
        """Args:
            sim: owning simulator (used to delay weight propagation).
            service: the service whose traffic is being split.
            backend_names: initial backends; all start with equal weight.
            propagation_delay_s: control-plane push latency before new
                weights reach the data plane.
        """
        names = list(backend_names)
        if not names:
            raise ConfigError("TrafficSplit needs at least one backend")
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate backends: {names}")
        if propagation_delay_s < 0:
            raise ConfigError(
                f"propagation delay must be >= 0: {propagation_delay_s}")
        self.sim = sim
        self.service = service
        self.propagation_delay_s = propagation_delay_s
        self._weights: dict[str, int] = {name: 1 for name in names}
        # Cached sum of active weights: pick() runs once per request,
        # weights change a few times a minute.
        self._total = len(names)
        self._rebuild_cumulative()
        self._generation = itertools.count(1)
        self._applied_generation = 0
        self.update_count = 0

    @property
    def weights(self) -> dict[str, int]:
        """The weights currently active in the data plane (a copy)."""
        return dict(self._weights)

    def backend_names(self) -> list[str]:
        return list(self._weights)

    def add_backend(self, name: str, weight: int = 1) -> None:
        """Add a target service to the split (§4: the operator's first
        control loop handles "the addition and removal of TrafficSplits
        and their target services")."""
        if name in self._weights:
            raise MeshError(f"backend already in split: {name}")
        if weight < 0 or int(weight) != weight:
            raise MeshError(f"invalid initial weight: {weight}")
        self._weights[name] = int(weight)
        self._total = sum(self._weights.values())
        self._rebuild_cumulative()

    def remove_backend(self, name: str) -> None:
        """Remove a target service; the last backend cannot be removed."""
        if name not in self._weights:
            raise MeshError(f"unknown backend: {name}")
        if len(self._weights) == 1:
            raise MeshError("cannot remove the last backend")
        del self._weights[name]
        self._total = sum(self._weights.values())
        self._rebuild_cumulative()

    def set_weights(self, weights: dict[str, int], now: float) -> None:
        """Write new weights; they activate after the propagation delay.

        Implements the :class:`repro.core.controller.WeightSink` protocol.
        Unknown backends are rejected; omitted backends keep their current
        weight (SMI updates are full objects in practice, but partial
        updates make the controller/mesh lifecycle races explicit).
        """
        for name, weight in weights.items():
            if name not in self._weights:
                raise MeshError(
                    f"unknown backend {name!r} in TrafficSplit {self.service!r}")
            if weight < 0 or int(weight) != weight:
                raise MeshError(
                    f"weights must be non-negative integers: {name}={weight}")
        generation = next(self._generation)
        if self.propagation_delay_s == 0:
            self._apply(dict(weights), generation)
        else:
            self.sim.call_after(
                self.propagation_delay_s, self._apply, dict(weights), generation)

    def _apply(self, weights: dict[str, int], generation: int) -> None:
        # Two in-flight pushes can reorder only if the control plane is
        # modelled with variable delay; guard regardless so an older (or
        # duplicate) generation never overwrites a newer one.
        if generation <= self._applied_generation:
            return
        self._applied_generation = generation
        self._weights.update(weights)
        self._total = sum(self._weights.values())
        self._rebuild_cumulative()
        self.update_count += 1

    def _rebuild_cumulative(self) -> None:
        # pick() used to walk the weights dict linearly; at fleet scale
        # (hundreds of backends) that scan dominated the hot path. The
        # cumulative-sum table turns it into one bisect. Running floats
        # over integer weights are exact (sums stay far below 2**53), so
        # bisect_right(cum, threshold) lands on exactly the same backend
        # the strict `threshold < running` scan returned — including
        # zero-weight entries, which both schemes skip.
        self._names = list(self._weights)
        cum = []
        running = 0.0
        for weight in self._weights.values():
            running += weight
            cum.append(running)
        self._cum = cum

    def pick(self, rng) -> str:
        """Pick a backend proportionally to the active weights."""
        total = self._total
        if total <= 0:
            # All-zero weights would blackhole traffic; fall back to uniform
            # (the SMI spec leaves this undefined; Linkerd errors requests,
            # but a benchmark must keep flowing to keep measuring).
            return self._names[rng.randrange(len(self._names))]
        threshold = rng.random() * total
        names = self._names
        # threshold == total can occur when rng.random() is close enough
        # to 1.0 that the product rounds up; the linear scan fell through
        # to the last backend, so clamp the bisect the same way.
        idx = bisect_right(self._cum, threshold)
        if idx >= len(names):
            idx = len(names) - 1
        return names[idx]
