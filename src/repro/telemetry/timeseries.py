"""Scraped-sample storage with windowed lookups.

The scraper appends ``(time, value)`` samples; queries read trailing
windows. Values are floats for counters/gauges and cumulative-count tuples
for histograms — the store is agnostic.
"""

from __future__ import annotations

import bisect
from collections import deque

from repro.errors import TelemetryError


class SampleSeries:
    """An append-only, time-ordered series with bounded retention."""

    def __init__(self, max_age_s: float = 300.0):
        if max_age_s <= 0:
            raise TelemetryError(f"retention must be positive: {max_age_s}")
        self.max_age_s = max_age_s
        self._times: deque[float] = deque()
        self._values: deque = deque()

    def __len__(self) -> int:
        return len(self._times)

    def append(self, when: float, value) -> None:
        """Append a sample; samples must arrive in time order."""
        if self._times and when < self._times[-1]:
            raise TelemetryError(
                f"out-of-order sample: {when} < {self._times[-1]}")
        self._times.append(when)
        self._values.append(value)
        cutoff = when - self.max_age_s
        while self._times and self._times[0] < cutoff:
            self._times.popleft()
            self._values.popleft()

    def window(self, start: float, end: float) -> list:
        """All ``(time, value)`` samples with ``start <= time <= end``."""
        times = list(self._times)
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, end)
        values = list(self._values)
        return list(zip(times[lo:hi], values[lo:hi]))

    def first_last_in_window(self, start: float, end: float):
        """``((t0, v0), (t1, v1))`` of the window edge samples, else None.

        Returns None when fewer than two samples fall inside the window —
        mirroring Prometheus ``rate()``, which needs at least two points.
        """
        samples = self.window(start, end)
        if len(samples) < 2:
            return None
        return samples[0], samples[-1]

    def latest_in_window(self, start: float, end: float):
        """The most recent ``(time, value)`` in the window, or None."""
        samples = self.window(start, end)
        return samples[-1] if samples else None


class TimeSeriesStore:
    """All scraped series, keyed by ``(backend_name, metric_name)``."""

    def __init__(self, max_age_s: float = 300.0):
        self.max_age_s = max_age_s
        self._series: dict[tuple[str, str], SampleSeries] = {}

    def series(self, backend: str, metric: str) -> SampleSeries:
        """Return (creating on first use) the series for a backend metric."""
        key = (backend, metric)
        found = self._series.get(key)
        if found is None:
            found = SampleSeries(self.max_age_s)
            self._series[key] = found
        return found

    def backends(self) -> set[str]:
        """All backend names that have at least one series."""
        return {backend for backend, _metric in self._series}
