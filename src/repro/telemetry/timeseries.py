"""Scraped-sample storage with windowed lookups.

The scraper appends ``(time, value)`` samples; queries read trailing
windows. Values are floats for counters/gauges and cumulative-count tuples
for histograms — the store is agnostic.

Storage is a pair of parallel lists rather than deques: ``bisect`` then
runs directly on the time list, and the window queries the controller
issues every reconcile interval touch only the two edge samples — no
whole-series copy per query. Retention trimming is amortized (the expired
prefix is sliced off only once it grows past a threshold), so appends stay
O(1) amortized just like the deque version.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.errors import TelemetryError

# Expired samples are physically removed only once this many accumulate;
# until then they merely sit below the live window (bisect skips them).
_TRIM_THRESHOLD = 256


class SampleSeries:
    """An append-only, time-ordered series with bounded retention."""

    __slots__ = ("max_age_s", "_times", "_values")

    def __init__(self, max_age_s: float = 300.0):
        if max_age_s <= 0:
            raise TelemetryError(f"retention must be positive: {max_age_s}")
        self.max_age_s = max_age_s
        self._times: list[float] = []
        self._values: list = []

    def __len__(self) -> int:
        # Live samples only: the lazily-trimmed expired prefix is not
        # part of the series' logical contents.
        times = self._times
        if not times:
            return 0
        return len(times) - bisect_left(times, times[-1] - self.max_age_s)

    def append(self, when: float, value) -> None:
        """Append a sample; samples must arrive in time order."""
        times = self._times
        if times and when < times[-1]:
            raise TelemetryError(
                f"out-of-order sample: {when} < {times[-1]}")
        times.append(when)
        self._values.append(value)
        cutoff = when - self.max_age_s
        if times[0] < cutoff:
            expired = bisect_left(times, cutoff)
            if expired >= _TRIM_THRESHOLD:
                del times[:expired]
                del self._values[:expired]

    def _window_bounds(self, start: float, end: float) -> tuple[int, int]:
        """Index range ``[lo, hi)`` of samples with start <= time <= end."""
        times = self._times
        # Clamp the left edge to the retention horizon: samples older than
        # max_age_s are logically expired even if not yet trimmed.
        if times:
            horizon = times[-1] - self.max_age_s
            if start < horizon:
                start = horizon
        return bisect_left(times, start), bisect_right(times, end)

    def window(self, start: float, end: float) -> list:
        """All ``(time, value)`` samples with ``start <= time <= end``."""
        lo, hi = self._window_bounds(start, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def first_last_in_window(self, start: float, end: float):
        """``((t0, v0), (t1, v1))`` of the window edge samples, else None.

        Returns None when fewer than two samples fall inside the window —
        mirroring Prometheus ``rate()``, which needs at least two points.
        Touches exactly two samples; nothing is copied.
        """
        lo, hi = self._window_bounds(start, end)
        if hi - lo < 2:
            return None
        last = hi - 1
        return ((self._times[lo], self._values[lo]),
                (self._times[last], self._values[last]))

    def latest_in_window(self, start: float, end: float):
        """The most recent ``(time, value)`` in the window, or None."""
        lo, hi = self._window_bounds(start, end)
        if hi <= lo:
            return None
        return self._times[hi - 1], self._values[hi - 1]


class TimeSeriesStore:
    """All scraped series, keyed by ``(backend_name, metric_name)``."""

    def __init__(self, max_age_s: float = 300.0):
        self.max_age_s = max_age_s
        self._series: dict[tuple[str, str], SampleSeries] = {}

    def series(self, backend: str, metric: str) -> SampleSeries:
        """Return (creating on first use) the series for a backend metric."""
        key = (backend, metric)
        found = self._series.get(key)
        if found is None:
            found = SampleSeries(self.max_age_s)
            self._series[key] = found
        return found

    def backends(self) -> set[str]:
        """All backend names that have at least one series."""
        return {backend for backend, _metric in self._series}
