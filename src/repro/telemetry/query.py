"""Windowed queries over scraped series — the controller's metrics source.

Implements the :class:`repro.core.controller.MetricsSource` protocol with
PromQL-equivalent semantics: counter rates from window edge samples,
percentiles from histogram-bucket deltas, gauges from the latest sample.
A backend without traffic in the window yields ``None`` (the paper: L3
"cannot retrieve metrics … after at least 10 seconds without any traffic"),
which triggers the controller's decay-toward-default path.
"""

from __future__ import annotations

from repro.core.controller import MetricSample
from repro.telemetry import names as metric_names
from repro.telemetry.histogram import DEFAULT_BUCKET_BOUNDS_S, quantile_from_delta
from repro.telemetry.timeseries import TimeSeriesStore


class PromMetricsSource:
    """Aggregated windowed metrics over a :class:`TimeSeriesStore`."""

    def __init__(self, store: TimeSeriesStore,
                 bucket_bounds=DEFAULT_BUCKET_BOUNDS_S,
                 scope: str | None = None):
        """Args:
            store: the scraped series.
            bucket_bounds: histogram ladder used by the scraped proxies.
            scope: when set, backend series are looked up under
                ``"{scope}|{backend}"`` — the per-source-cluster vantage
                point a cluster-local L3 instance queries.
        """
        self.store = store
        self.bucket_bounds = tuple(bucket_bounds)
        self.scope = scope
        # Scoped-name memo: the controller queries the same handful of
        # backends every reconcile interval; building the "scope|backend"
        # string (and the server|name key below) once per backend instead
        # of once per query keeps the scrape pipeline allocation-free.
        self._scoped_names: dict[str, str] = {}
        self._server_names: dict[str, str] = {}

    def _scoped(self, name: str) -> str:
        if not self.scope:
            return name
        scoped = self._scoped_names.get(name)
        if scoped is None:
            scoped = self._scoped_names[name] = metric_names.scoped_series_name(
                self.scope, name)
        return scoped

    def collect(self, backend_names, now: float, window_s: float,
                percentile: float) -> dict:
        """One :class:`MetricSample` (or None) per backend over the window."""
        return {
            name: self._collect_backend(name, now, window_s, percentile)
            for name in backend_names
        }

    def _collect_backend(self, name: str, now: float, window_s: float,
                         percentile: float):
        start = now - window_s
        name = self._scoped(name)
        requests = self.store.series(name, metric_names.REQUESTS_TOTAL)
        edges = requests.first_last_in_window(start, now)
        if edges is None:
            return None
        (t0, req0), (t1, req1) = edges
        elapsed = t1 - t0
        delta_requests = req1 - req0
        if elapsed <= 0 or delta_requests <= 0:
            return None

        rps = delta_requests / elapsed

        failures = self.store.series(name, metric_names.FAILURES_TOTAL)
        failure_edges = failures.first_last_in_window(start, now)
        delta_failures = (
            failure_edges[1][1] - failure_edges[0][1] if failure_edges else 0.0)
        success_rate = 1.0 - delta_failures / delta_requests
        success_rate = min(max(success_rate, 0.0), 1.0)

        latency_s = self._latency_quantile(
            name, metric_names.SUCCESS_LATENCY_BUCKETS, start, now, percentile)
        mean_latency_s = self._mean_latency(name, start, now)

        inflight_sample = self.store.series(
            name, metric_names.INFLIGHT).latest_in_window(start, now)
        inflight = max(inflight_sample[1], 0.0) if inflight_sample else 0.0

        return MetricSample(
            latency_s=latency_s, success_rate=success_rate,
            rps=rps, inflight=inflight, mean_latency_s=mean_latency_s)

    def _mean_latency(self, name: str, start: float, end: float):
        """Windowed mean of successful latency from sum/count deltas."""
        sums = self.store.series(
            name, metric_names.SUCCESS_LATENCY_SUM
        ).first_last_in_window(start, end)
        counts = self.store.series(
            name, metric_names.SUCCESS_LATENCY_COUNT
        ).first_last_in_window(start, end)
        if sums is None or counts is None:
            return None
        delta_count = counts[1][1] - counts[0][1]
        if delta_count <= 0:
            return None
        return (sums[1][1] - sums[0][1]) / delta_count

    def _latency_quantile(self, name: str, metric: str, start: float,
                          end: float, percentile: float):
        """Windowed percentile from histogram deltas; None without data."""
        series = self.store.series(name, metric)
        edges = series.first_last_in_window(start, end)
        if edges is None:
            return None
        (_t0, buckets0), (_t1, buckets1) = edges
        if buckets1[-1] - buckets0[-1] <= 0:
            return None
        return quantile_from_delta(
            self.bucket_bounds, buckets0, buckets1, percentile)

    def server_gauge(self, name: str, metric: str, now: float,
                     window_s: float) -> float | None:
        """Latest server-side gauge of a backend, or None without a sample.

        Server-reported metrics (queue occupancy, replica count) are
        properties of the backend itself, so their series are shared by
        all vantage points (never scope-prefixed). ``None`` — as opposed
        to the zero :meth:`server_queue` substitutes — lets a consumer
        that must distinguish "no data yet" from "idle" (the autoscaler's
        hold-state path) do so.
        """
        series_name = self._server_names.get(name)
        if series_name is None:
            series_name = self._server_names[name] = (
                metric_names.server_series_name(name))
        sample = self.store.series(
            series_name, metric).latest_in_window(now - window_s, now)
        return max(sample[1], 0.0) if sample else None

    def server_queue(self, name: str, now: float, window_s: float) -> float:
        """Latest server-side queue occupancy of a backend (unscoped).

        Server-reported queue size is the feedback channel the original C3
        relies on; a backend without a sample in the window reads as 0.
        """
        value = self.server_gauge(
            name, metric_names.SERVER_QUEUE, now, window_s)
        return 0.0 if value is None else value

    def failure_latency_quantile(self, name: str, now: float,
                                 window_s: float, percentile: float):
        """Windowed percentile of *failed*-request latency (extension).

        Used by the dynamic-penalty-factor extension (paper §7 future
        work): continuous feedback about the response time of unsuccessful
        requests. Returns None without failure data in the window.
        """
        return self._latency_quantile(
            self._scoped(name), metric_names.FAILURE_LATENCY_BUCKETS,
            now - window_s, now, percentile)
