"""The canonical metric names of the telemetry pipeline.

Every layer that produces or consumes scraped series — the simulated
scrape loop (:mod:`repro.telemetry.scraper`), the windowed query layer
(:mod:`repro.telemetry.query`) and the live testbed's Prometheus
text-exposition endpoint (:mod:`repro.live.exposition`) — imports the
names from here, so the simulated and live pipelines cannot drift: a
renamed metric is a one-line change that every emitter and parser picks
up, and the round-trip test in ``tests/live/test_exposition.py`` pins
the text format to these exact names.

Series are keyed in the :class:`~repro.telemetry.timeseries.TimeSeriesStore`
by ``(series_name, metric_name)``; the series name carries the vantage
point (``"cluster-1|api/cluster-2"`` for a proxy's view of a backend,
``"server|api/cluster-2"`` for a backend's own server-side signals). In
the Prometheus text format the series name travels as the value of the
:data:`SERIES_LABEL` label, because series names contain characters
(``|``, ``/``) that are invalid in Prometheus metric names.
"""

from __future__ import annotations

# --- store metric names (one series per backend per metric) ----------- #

REQUESTS_TOTAL = "requests_total"
FAILURES_TOTAL = "failures_total"
SUCCESS_LATENCY_BUCKETS = "success_latency_buckets"
SUCCESS_LATENCY_SUM = "success_latency_sum"
SUCCESS_LATENCY_COUNT = "success_latency_count"
FAILURE_LATENCY_BUCKETS = "failure_latency_buckets"
INFLIGHT = "inflight"
SERVER_QUEUE = "server_queue"
REPLICA_COUNT = "replica_count"
AUTOSCALE_EVENTS = "autoscale_events"

# --- Prometheus text-exposition vocabulary ----------------------------- #

# Label under which the store's series name travels in the text format.
SERIES_LABEL = "series"

# Counter metrics: exposition name == store name, value is a float.
COUNTER_METRICS = (REQUESTS_TOTAL, FAILURES_TOTAL, AUTOSCALE_EVENTS)

# Gauge metrics: exposition name == store name, value is a float.
GAUGE_METRICS = (INFLIGHT, SERVER_QUEUE, REPLICA_COUNT)

# Metrics reported by the backend itself (under ``server|<backend>``
# series), not part of any client proxy's scrape bundle: the queue gauge
# C3 reads, plus the autoscaler's replica gauge and event counter.
SERVER_SIDE_METRICS = (SERVER_QUEUE, REPLICA_COUNT, AUTOSCALE_EVENTS)

# Histogram families: store name of the cumulative-bucket tuple → the
# exposition family base name. Prometheus convention derives the three
# exposed series from the base: ``<base>_bucket{le=...}``, ``<base>_sum``
# and ``<base>_count``. The sum/count store names are listed so parsers
# can map them back without string surgery.
HISTOGRAM_FAMILIES = {
    SUCCESS_LATENCY_BUCKETS: "success_latency",
    FAILURE_LATENCY_BUCKETS: "failure_latency",
}

# Histogram families whose _sum/_count series are also scraped into the
# store (the failure histogram's sum/count are not part of the scrape
# set — only its buckets feed the dynamic-penalty extension).
HISTOGRAM_SUM_COUNT = {
    "success_latency": (SUCCESS_LATENCY_SUM, SUCCESS_LATENCY_COUNT),
}

# Every metric name a scrape may write into the store.
ALL_METRICS = (
    REQUESTS_TOTAL,
    FAILURES_TOTAL,
    SUCCESS_LATENCY_BUCKETS,
    SUCCESS_LATENCY_SUM,
    SUCCESS_LATENCY_COUNT,
    FAILURE_LATENCY_BUCKETS,
    INFLIGHT,
    SERVER_QUEUE,
    REPLICA_COUNT,
    AUTOSCALE_EVENTS,
)


def server_series_name(backend: str) -> str:
    """Series name of a backend's own server-side signals (unscoped).

    Server-reported metrics (queue occupancy) are properties of the
    backend itself, shared by every vantage point — never scope-prefixed.
    """
    return f"server|{backend}"


def scoped_series_name(scope: str, backend: str) -> str:
    """Series name of one vantage point's view of a backend."""
    return f"{scope}|{backend}"
