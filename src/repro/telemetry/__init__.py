"""Prometheus-like telemetry pipeline (paper §4, "Metric collection").

The mesh's sidecar proxies expose monotonically increasing counters, an
in-flight gauge and a bucketed latency histogram per backend
(:mod:`repro.telemetry.metrics`, :mod:`repro.telemetry.histogram`). A
scraper process snapshots them on a fixed interval (default 5 s,
:mod:`repro.telemetry.scraper`) into time series; the controller's queries
(:mod:`repro.telemetry.query`) compute windowed rates and percentiles from
those samples — reproducing the data-freshness characteristics the paper
discusses (per-second averages extrapolated from a 10 s window holding at
least two scrape samples).
"""

from repro.telemetry.histogram import DEFAULT_BUCKET_BOUNDS_S, LatencyHistogram
from repro.telemetry.metrics import BackendTelemetry, Counter, Gauge
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import SampleSeries, TimeSeriesStore

__all__ = [
    "BackendTelemetry",
    "Counter",
    "DEFAULT_BUCKET_BOUNDS_S",
    "Gauge",
    "LatencyHistogram",
    "PromMetricsSource",
    "SampleSeries",
    "Scraper",
    "TimeSeriesStore",
]
