"""The Prometheus-like scrape loop (paper §4: default every 5 seconds)."""

from __future__ import annotations

from repro.errors import Interrupted, TelemetryError
from repro.telemetry.metrics import BackendTelemetry
from repro.telemetry.timeseries import TimeSeriesStore

# Metric names under which a backend's telemetry is scraped. The
# canonical definitions live in repro.telemetry.names (shared with the
# live testbed's text-exposition endpoint); the aliases below are kept
# because this module historically defined them.
from repro.telemetry.names import (  # noqa: F401 - re-exported aliases
    FAILURE_LATENCY_BUCKETS,
    FAILURES_TOTAL,
    INFLIGHT,
    REQUESTS_TOTAL,
    SERVER_QUEUE,
    SUCCESS_LATENCY_BUCKETS,
    SUCCESS_LATENCY_COUNT,
    SUCCESS_LATENCY_SUM,
)


class Scraper:
    """Periodically snapshots proxy telemetry into a time-series store.

    The scrape interval bounds the control loop's data freshness: rates are
    per-second averages extrapolated from counter deltas between scrapes,
    which the paper calls out as a limitation for spiky workloads (§4).
    """

    def __init__(self, store: TimeSeriesStore, interval_s: float = 5.0):
        if interval_s <= 0:
            raise TelemetryError(f"scrape interval must be positive: {interval_s}")
        self.store = store
        self.interval_s = interval_s
        self._targets: dict[str, BackendTelemetry] = {}
        self._gauges: list[tuple[str, str, object]] = []
        # Fault injection: a paused scraper skips its ticks entirely, so
        # the store receives no new samples and windowed queries go empty —
        # the controller's decay-toward-default path.
        self.paused = False
        self.skipped_scrapes = 0
        # Optional chunk-boundary hook: called at the top of every actual
        # scrape, before any target is read. The vector engine registers
        # its telemetry flush here so buffered per-request chunks are
        # folded in exactly when the control plane looks.
        self.pre_scrape = None

    def register(self, telemetry: BackendTelemetry) -> None:
        """Add a proxy's per-backend telemetry bundle as a scrape target."""
        name = getattr(telemetry, "scrape_name", telemetry.backend_name)
        if name in self._targets:
            raise TelemetryError(f"duplicate scrape target: {name}")
        self._targets[name] = telemetry

    def register_gauge(self, series_name: str, metric: str, read) -> None:
        """Add a custom gauge scrape target.

        Used for server-side signals that are not part of a client proxy's
        bundle — e.g. a backend's replica queue occupancy, the feedback
        channel the original C3 relies on.

        Args:
            series_name: time-series key (e.g. ``"server|svc/cluster-1"``).
            metric: metric name within the series.
            read: zero-argument callable returning the current value.
        """
        self._gauges.append((series_name, metric, read))

    def scrape_once(self, now: float) -> None:
        """Snapshot every registered target at time ``now``."""
        hook = self.pre_scrape
        if hook is not None:
            hook()
        for name, telemetry in self._targets.items():
            self.store.series(name, REQUESTS_TOTAL).append(
                now, telemetry.requests_total.value)
            self.store.series(name, FAILURES_TOTAL).append(
                now, telemetry.failures_total.value)
            self.store.series(name, SUCCESS_LATENCY_BUCKETS).append(
                now, telemetry.success_latency.cumulative_counts())
            self.store.series(name, SUCCESS_LATENCY_SUM).append(
                now, telemetry.success_latency.sum)
            self.store.series(name, SUCCESS_LATENCY_COUNT).append(
                now, telemetry.success_latency.count)
            self.store.series(name, FAILURE_LATENCY_BUCKETS).append(
                now, telemetry.failure_latency.cumulative_counts())
            self.store.series(name, INFLIGHT).append(
                now, telemetry.inflight.value)
        for series_name, metric, read in self._gauges:
            self.store.series(series_name, metric).append(now, float(read()))

    def pause(self, mode: str = "error") -> None:
        """Suspend scraping (fault injection: Prometheus outage).

        ``mode`` exists for signature parity with the live substrate's
        scrape-outage adapter (500s vs. stalls); in the simulator an
        outage is the absence of samples either way, so it is ignored.
        """
        del mode
        self.paused = True

    def resume(self) -> None:
        """Resume a paused scrape loop."""
        self.paused = False

    def run(self, sim):
        """Generator process: scrape every ``interval_s`` until interrupted.

        While :attr:`paused`, ticks pass without scraping (counted in
        :attr:`skipped_scrapes`).
        """
        try:
            while True:
                yield sim.timeout(self.interval_s)
                if self.paused:
                    self.skipped_scrapes += 1
                else:
                    self.scrape_once(sim.now)
        except Interrupted:
            return
