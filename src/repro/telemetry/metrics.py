"""Proxy-side metric primitives (counters, gauges, per-backend bundles).

Mirrors how a Linkerd proxy exposes data-plane metrics: request totals are
monotonic counters (rates must be derived by the query layer from scraped
samples, never read directly), in-flight requests are a gauge, latency is a
bucketed histogram.
"""

from __future__ import annotations

from repro.errors import TelemetryError
from repro.telemetry.histogram import LatencyHistogram


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value",)

    def __init__(self):
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; decreasing is a telemetry-model violation."""
        if amount < 0:
            raise TelemetryError(f"counters cannot decrease: {amount}")
        self._value += amount


class Gauge:
    """A value that can move in both directions (e.g. in-flight requests)."""

    __slots__ = ("_value",)

    def __init__(self, initial: float = 0.0):
        self._value = float(initial)

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class BackendTelemetry:
    """The full data-plane metric bundle one proxy keeps per backend.

    Attributes:
        requests_total: all completed requests (success + failure).
        failures_total: completed requests with a failure response.
        success_latency: latency histogram of *successful* requests only
            (§3.1: failure latency must not pollute the success signal).
        failure_latency: latency histogram of failed requests, kept
            separately — used by the dynamic-penalty extension.
        inflight: requests sent but not yet answered.
    """

    def __init__(self, backend_name: str, scrape_name: str | None = None):
        """Args:
            backend_name: the backend these metrics describe.
            scrape_name: name the scraper stores series under; defaults to
                the backend name. Proxies scope it by source cluster
                (``"cluster-1|svc/cluster-2"``) so that each cluster's L3
                instance sees latency *from its own vantage point* — the
                paper's "L3 would most likely run on all clusters".
        """
        self.backend_name = backend_name
        self.scrape_name = scrape_name or backend_name
        self.requests_total = Counter()
        self.failures_total = Counter()
        self.success_latency = LatencyHistogram()
        self.failure_latency = LatencyHistogram()
        self.inflight = Gauge()

    # The two hooks below run once per request attempt; the Gauge/Counter
    # inc()/dec() calls are inlined (same `+= 1.0` the methods perform —
    # the amounts are constants, so the validation they'd do is vacuous).

    def on_request_sent(self) -> None:
        """Record a request leaving the proxy toward this backend."""
        self.inflight._value += 1.0

    def on_response(self, latency_s: float, success: bool) -> None:
        """Record a completed request (response or failure observed)."""
        self.inflight._value -= 1.0
        self.requests_total._value += 1.0
        if success:
            self.success_latency.observe(latency_s)
        else:
            self.failures_total._value += 1.0
            self.failure_latency.observe(latency_s)
