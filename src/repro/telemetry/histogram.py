"""Bucketed latency histograms with Prometheus quantile semantics.

Linkerd proxies export latency as a cumulative histogram over a fixed
bucket ladder; percentiles are *estimated* by linear interpolation inside
the bucket containing the target rank (exactly what PromQL's
``histogram_quantile`` does). The estimation error this introduces is part
of the system the paper measures, so we reproduce it rather than using
exact percentiles on the control path. (Exact percentiles over raw samples
live in :mod:`repro.analysis.percentiles` and are used only for *reporting*
benchmark results, mirroring the paper's benchmark coordinator.)
"""

from __future__ import annotations

import bisect
import math
from itertools import accumulate, pairwise

from repro.errors import TelemetryError

# Linkerd's proxy bucket ladder (seconds): 1 ms resolution at the bottom,
# decade steps of {1,2,3,4,5} up to 60 s, +Inf implicit.
DEFAULT_BUCKET_BOUNDS_S: tuple[float, ...] = tuple(
    ms / 1000.0 for ms in (
        1, 2, 3, 4, 5,
        10, 20, 30, 40, 50,
        100, 200, 300, 400, 500,
        1_000, 2_000, 3_000, 4_000, 5_000,
        10_000, 20_000, 30_000, 40_000, 50_000, 60_000,
    )
)


class LatencyHistogram:
    """A cumulative histogram (each bucket counts observations <= bound)."""

    __slots__ = ("bounds", "_buckets", "_count", "_sum", "_cumulative")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS_S):
        if not bounds:
            raise TelemetryError("at least one bucket bound is required")
        # Single adjacent-pair pass: strictly-increasing implies sorted and
        # duplicate-free, with no sorted()/set() copies of the ladder (one
        # histogram is constructed per backend per run).
        for lower, upper in pairwise(bounds):
            if not lower < upper:
                raise TelemetryError(
                    "bucket bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        # Per-bucket (non-cumulative) counts; the final slot is +Inf.
        # Observation is the hot path (per request); the cumulative view is
        # only materialised at scrape time — and cached until the next
        # observation, since back-to-back scrapes/quantile queries of an
        # idle backend are common.
        self._buckets = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._cumulative: tuple[int, ...] | None = None

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation (negative latencies are invalid)."""
        if value < 0 or math.isnan(value):
            raise TelemetryError(f"invalid latency observation: {value}")
        self._buckets[bisect.bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value
        self._cumulative = None

    def cumulative_counts(self) -> tuple[int, ...]:
        """Cumulative counts per bucket (monotone, last entry == count).

        The view is materialised with :func:`itertools.accumulate` and
        cached until the next observation; a scrape of an idle backend
        costs one attribute read instead of a 27-bucket rebuild.
        """
        cumulative = self._cumulative
        if cumulative is None:
            cumulative = self._cumulative = tuple(accumulate(self._buckets))
        return cumulative

    def quantile(self, q: float) -> float:
        """Estimate quantile ``q`` over all observations ever recorded."""
        return quantile_from_cumulative(
            self.bounds, self.cumulative_counts(), q)


def quantile_from_cumulative(bounds, cumulative, q: float) -> float:
    """PromQL ``histogram_quantile`` over one cumulative snapshot.

    Args:
        bounds: finite upper bucket bounds (ascending).
        cumulative: cumulative counts per bucket, one longer than ``bounds``
            (the final entry is the +Inf bucket == total count).
        q: quantile in ``[0, 1]``.

    Returns:
        The interpolated quantile; 0.0 when the histogram is empty. Ranks
        falling in the +Inf bucket return the largest finite bound (the
        same clamping Prometheus applies).
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1]: {q}")
    if len(cumulative) != len(bounds) + 1:
        raise TelemetryError(
            f"cumulative length {len(cumulative)} != bounds+1 {len(bounds) + 1}")
    total = cumulative[-1]
    if total <= 0:
        return 0.0
    rank = q * total
    index = bisect.bisect_left(cumulative, rank)
    if index >= len(bounds):
        return bounds[-1]
    upper = bounds[index]
    lower = bounds[index - 1] if index > 0 else 0.0
    below = cumulative[index - 1] if index > 0 else 0
    in_bucket = cumulative[index] - below
    if in_bucket <= 0:
        return upper
    fraction = (rank - below) / in_bucket
    return lower + (upper - lower) * fraction


def quantile_from_delta(bounds, cumulative_start, cumulative_end,
                        q: float) -> float:
    """Quantile of the observations falling *between* two scrape snapshots.

    This is the control-path percentile: the distribution over a trailing
    window, computed from the difference of two cumulative scrapes (how the
    paper's Prometheus queries derive the windowed P99).
    """
    if len(cumulative_start) != len(cumulative_end):
        raise TelemetryError("snapshot lengths differ")
    # Build the per-bucket delta and validate monotonicity in one pass
    # (this runs once per backend per reconcile interval).
    delta = []
    for start, end in zip(cumulative_start, cumulative_end):
        diff = end - start
        if diff < 0:
            raise TelemetryError(
                "counter reset detected in histogram snapshots")
        delta.append(diff)
    return quantile_from_cumulative(bounds, delta, q)
