"""Aggregations over request records: success rates, timelines, deltas."""

from __future__ import annotations

import math
from collections import defaultdict

from repro.analysis.percentiles import exact_percentile


def success_rate(records) -> float:
    """Fraction of successful records; 1.0 for an empty set."""
    records = list(records)
    if not records:
        return 1.0
    return sum(1 for r in records if r.success) / len(records)


def relative_decrease(baseline: float, value: float) -> float:
    """How much smaller ``value`` is than ``baseline``, as a fraction.

    Positive means improvement (e.g. 0.26 == a 26 % reduction, the paper's
    headline L3-vs-round-robin number).
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive: {baseline}")
    return (baseline - value) / baseline


def latency_timeline(records, bucket_s: float = 10.0,
                     percentiles=(0.50, 0.99), key=None) -> dict:
    """Bucketed percentile series over time, optionally grouped.

    Args:
        records: request records.
        bucket_s: time-bucket width.
        percentiles: which percentiles to compute per bucket.
        key: optional ``f(record) -> group`` (e.g. ``lambda r: r.backend``
            for the paper's per-cluster Fig. 1 style plots).

    Returns:
        ``{group: [(bucket_start_s, {"p50": ..., "p99": ...}), ...]}``;
        the single group is ``"all"`` when ``key`` is None.
    """
    if bucket_s <= 0:
        raise ValueError(f"bucket width must be positive: {bucket_s}")
    grouped: dict = defaultdict(lambda: defaultdict(list))
    for record in records:
        group = key(record) if key else "all"
        bucket = math.floor(record.intended_start_s / bucket_s) * bucket_s
        grouped[group][bucket].append(record.latency_s)
    out: dict = {}
    for group, buckets in grouped.items():
        series = []
        for bucket_start in sorted(buckets):
            values = buckets[bucket_start]
            point = {
                f"p{int(q * 100)}": exact_percentile(values, q)
                for q in percentiles
            }
            point["count"] = len(values)
            series.append((bucket_start, point))
        out[group] = series
    return out


def rps_timeline(records, bucket_s: float = 10.0) -> list:
    """Offered-RPS series over time: ``[(bucket_start_s, rps), ...]``."""
    if bucket_s <= 0:
        raise ValueError(f"bucket width must be positive: {bucket_s}")
    counts: dict = defaultdict(int)
    for record in records:
        bucket = math.floor(record.intended_start_s / bucket_s) * bucket_s
        counts[bucket] += 1
    return [(bucket, counts[bucket] / bucket_s) for bucket in sorted(counts)]
