"""Human-readable latency reports (wrk2/HDR-style output).

The benchmark coordinator captures every request; these helpers render the
full percentile spectrum and side-by-side comparisons the way a wrk2 user
would expect to read them.
"""

from __future__ import annotations

from repro.analysis.percentiles import Percentiles

# The spectrum wrk2 prints by default.
SPECTRUM = (0.50, 0.75, 0.90, 0.99, 0.999, 0.9999, 1.0)


def latency_spectrum(records, percentiles=SPECTRUM) -> list:
    """``[(percentile, latency_ms), ...]`` over request records."""
    if not records:
        raise ValueError("no records to report on")
    # One sort serves the whole spectrum (exact_percentile would re-sort
    # the latency list once per row).
    latencies = Percentiles(r.latency_s for r in records)
    return [
        (q, latencies.percentile(q) * 1000.0)
        for q in percentiles
    ]


def render_spectrum(records, title: str = "latency spectrum") -> str:
    """A wrk2-style percentile table for one run."""
    lines = [title, f"  {'percentile':>10}  {'latency':>12}"]
    for q, latency_ms in latency_spectrum(records):
        label = f"{q * 100:.4f}".rstrip("0").rstrip(".") + "%"
        lines.append(f"  {label:>10}  {latency_ms:>9.2f} ms")
    lines.append(f"  {'requests':>10}  {len(list(records)):>12}")
    return "\n".join(lines)


def render_comparison(results: dict, title: str = "comparison") -> str:
    """Side-by-side spectra for several runs.

    Args:
        results: label → iterable of request records (e.g. one
            :class:`~repro.bench.coordinator.BenchmarkResult`'s records
            per algorithm).
    """
    if not results:
        raise ValueError("no results to compare")
    spectra = {
        label: dict(latency_spectrum(records))
        for label, records in results.items()
    }
    labels = list(spectra)
    header = f"  {'percentile':>10}" + "".join(
        f"  {label:>14}" for label in labels)
    lines = [title, header]
    for q in SPECTRUM:
        row = f"{q * 100:.4f}".rstrip("0").rstrip(".") + "%"
        cells = "".join(
            f"  {spectra[label][q]:>11.2f} ms" for label in labels)
        lines.append(f"  {row:>10}{cells}")
    return "\n".join(lines)
