"""Critical-path latency breakdown from recorded trace spans.

Answers the question the paper's aggregated percentiles cannot: when a
client saw a slow request, *where did the time go*? Each recorded trace
is decomposed into the legs of the request path and aggregated per
backend:

* **exec** — replica execution (``server.exec``), the part the §5.1
  scenario profiles model;
* **queue** — waiting for a replica concurrency slot (``server.queue``),
  the congestion signal Algorithm 1's in-flight term manages;
* **wan** — network transit (``wan.send`` + ``wan.recv``), what the
  paper's methodology explicitly excludes from execution latency;
* **retry** — time burned in failed attempts and back-offs before the
  attempt that produced the response;
* **other** — the residual: proxy forwarding overhead, and time inside
  a final attempt not covered by finished child spans (e.g. the wait on
  an abandoned, deadline-expired leg).

Shares are computed over client-perceived latency (the root ``request``
span, measured from the intended start, coordinated-omission corrected),
so the columns of :func:`render_critical_path` sum to ~100 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tracing import model


@dataclass
class BackendCriticalPath:
    """Aggregated latency decomposition for one backend.

    Attributes:
        backend: backend name (requests attributed to the backend that
            served — or last attempted — them).
        requests: number of traced requests.
        attempts: total attempts across those requests (equals
            ``requests`` when nothing retried — the
            ``RequestRecord.attempts`` column, now surfaced).
        total_s / exec_s / queue_s / wan_s / retry_s: summed seconds per
            component across all traced requests.
    """

    backend: str
    requests: int = 0
    attempts: int = 0
    total_s: float = 0.0
    exec_s: float = 0.0
    queue_s: float = 0.0
    wan_s: float = 0.0
    retry_s: float = 0.0
    statuses: dict = field(default_factory=dict)

    @property
    def other_s(self) -> float:
        """Residual time (overhead, abandoned-leg waits)."""
        accounted = self.exec_s + self.queue_s + self.wan_s + self.retry_s
        return max(self.total_s - accounted, 0.0)

    @property
    def mean_attempts(self) -> float:
        """Average attempts per request (1.0 = nothing retried)."""
        return self.attempts / self.requests if self.requests else 0.0

    def share(self, component_s: float) -> float:
        """A component's fraction of total client-perceived latency."""
        return component_s / self.total_s if self.total_s > 0 else 0.0


def _spans_of(recorder_or_spans):
    finished = getattr(recorder_or_spans, "finished_spans", None)
    if finished is not None:
        return finished()
    return [s for s in recorder_or_spans if s.finished]


def critical_path(recorder_or_spans) -> dict[str, BackendCriticalPath]:
    """Decompose every recorded trace; returns backend → aggregate.

    Accepts a :class:`~repro.tracing.recorder.SpanRecorder` (or any
    iterable of :class:`~repro.tracing.model.TraceSpan`); open spans and
    traces without a finished root are skipped.
    """
    by_trace: dict[int, list] = {}
    for span in _spans_of(recorder_or_spans):
        by_trace.setdefault(span.trace_id, []).append(span)

    out: dict[str, BackendCriticalPath] = {}
    for spans in by_trace.values():
        roots = [s for s in spans if s.name == model.REQUEST]
        if not roots:
            continue
        root = roots[0]
        backend = root.attributes.get("backend")
        if backend is None:
            continue
        attempts = sorted(
            (s for s in spans if s.name == model.ATTEMPT),
            key=lambda s: s.start_s)
        if not attempts:
            continue
        final = attempts[-1]
        final_children = [s for s in spans if s.parent_id == final.span_id]

        row = out.get(backend)
        if row is None:
            row = out[backend] = BackendCriticalPath(backend)
        row.requests += 1
        row.attempts += int(root.attributes.get("attempts", len(attempts)))
        row.total_s += root.duration_s
        row.statuses[root.status] = row.statuses.get(root.status, 0) + 1
        for child in final_children:
            # Clip to the attempt's window: a deadline-abandoned leg can
            # finish long after the client gave up (e.g. a blackholed
            # replica releasing its parked request when the fault
            # reverts), and only the overlap was on the client's clock.
            overlap = _overlap(child, final)
            if child.name == model.SERVER_EXEC:
                row.exec_s += overlap
            elif child.name == model.SERVER_QUEUE:
                row.queue_s += overlap
            elif child.kind == model.NETWORK:
                row.wan_s += overlap
        # Everything before the final attempt was wasted on retries:
        # earlier attempts in full, plus the back-off gaps between them.
        for earlier in attempts[:-1]:
            row.retry_s += _overlap(earlier, root)
        for span in spans:
            if span.name == model.RETRY_BACKOFF:
                row.retry_s += _overlap(span, root)
    return out


def _overlap(span, window) -> float:
    """Seconds of ``span`` that fall inside ``window``'s interval."""
    return max(
        min(span.end_s, window.end_s) - max(span.start_s, window.start_s),
        0.0)


def render_critical_path(
        breakdown: dict[str, BackendCriticalPath],
        title: str = "critical path (share of client latency)") -> str:
    """A per-backend table of the latency decomposition.

    Columns: traced request count, total retry attempts beyond the first
    (the ``RequestRecord.attempts`` signal), mean client latency, and
    each component's share of client-perceived time.
    """
    if not breakdown:
        raise ValueError("no traces to report on")
    header = (f"  {'backend':<24} {'reqs':>6} {'attempts':>8} "
              f"{'mean ms':>8} {'exec':>6} {'queue':>6} {'wan':>6} "
              f"{'retry':>6} {'other':>6}")
    lines = [title, header]
    for backend in sorted(breakdown):
        row = breakdown[backend]
        mean_ms = row.total_s / row.requests * 1000.0 if row.requests else 0.0
        lines.append(
            f"  {backend:<24} {row.requests:>6} "
            f"{row.mean_attempts:>8.2f} {mean_ms:>8.2f} "
            f"{row.share(row.exec_s) * 100:>5.1f}% "
            f"{row.share(row.queue_s) * 100:>5.1f}% "
            f"{row.share(row.wan_s) * 100:>5.1f}% "
            f"{row.share(row.retry_s) * 100:>5.1f}% "
            f"{row.share(row.other_s) * 100:>5.1f}%")
    return "\n".join(lines)
