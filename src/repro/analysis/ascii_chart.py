"""Plain-text charts for rendering figure data without a plotting stack.

Renders time series (Figs. 1, 2, 4, 6) and bar comparisons (Figs. 8-12)
as ASCII, so ``python -m repro figure ...`` can show the *shape* of every
figure directly in a terminal.
"""

from __future__ import annotations


def render_line_chart(series: dict, width: int = 72, height: int = 16,
                      title: str = "") -> str:
    """Plot one or more ``[(x, y), ...]`` series on a shared canvas.

    Each series gets a distinct glyph; a legend maps glyphs to names.
    """
    if not series:
        raise ValueError("nothing to plot")
    glyphs = "*o+x#@%&"
    points_by_glyph = {}
    all_x, all_y = [], []
    for index, (name, points) in enumerate(series.items()):
        if not points:
            raise ValueError(f"series {name!r} is empty")
        glyph = glyphs[index % len(glyphs)]
        points_by_glyph[(glyph, name)] = points
        all_x.extend(x for x, _y in points)
        all_y.extend(y for _x, y in points)

    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for (glyph, _name), points in points_by_glyph.items():
        for x, y in points:
            column = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][column] = glyph

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_hi:.4g}"), len(f"{y_lo:.4g}"))
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = f"{y_hi:.4g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_lo:.4g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(axis)
    x_labels = (f"{x_lo:.4g}", f"{x_hi:.4g}")
    gap = width - len(x_labels[0]) - len(x_labels[1])
    lines.append(f"{' ' * label_width}  {x_labels[0]}{' ' * max(gap, 1)}"
                 f"{x_labels[1]}")
    for (glyph, name), _points in points_by_glyph.items():
        lines.append(f"  {glyph} = {name}")
    return "\n".join(lines)


def render_bar_chart(values: dict, width: int = 48, unit: str = "",
                     title: str = "") -> str:
    """Horizontal bars for a ``{label: value}`` comparison."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar values must be positive")
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(int(value / peak * width), 1)
        lines.append(
            f"  {label.ljust(label_width)}  {bar} {value:.1f}{unit}")
    return "\n".join(lines)
