"""Exact percentile computation over raw latency samples.

Used by the benchmark coordinator for *reporting* (the paper's coordinator
"retrieves the request latency … of each request"). The control path uses
the bucketed histogram estimates instead — see
:mod:`repro.telemetry.histogram`.
"""

from __future__ import annotations

import math


def _percentile_of_sorted(ordered, q: float) -> float:
    """Percentile of an already-ascending sequence (no validation)."""
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def exact_percentile(values, q: float) -> float:
    """Exact linear-interpolated percentile (numpy's default method).

    Sorts ``values`` on every call — fine for a one-off query; when
    several percentiles are read from the same sample set (a reporting
    spectrum, a result's p50/p90/p99), build a :class:`Percentiles` once
    instead.

    Args:
        values: a non-empty iterable of numbers.
        q: percentile in ``[0, 1]``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1]: {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("cannot take a percentile of no samples")
    return _percentile_of_sorted(ordered, q)


class Percentiles:
    """Percentile reader over one sample set, sorted exactly once.

    The benchmark reporters read whole spectra (p50..p100) plus the
    headline p50/p90/p99 from the same latency list; re-sorting per read
    made percentile extraction quadratic-ish in practice. This helper
    pays the O(n log n) sort at construction and serves every subsequent
    percentile in O(1).
    """

    __slots__ = ("_sorted",)

    def __init__(self, values):
        self._sorted = sorted(values)
        if not self._sorted:
            raise ValueError("cannot take a percentile of no samples")

    def __len__(self) -> int:
        return len(self._sorted)

    def percentile(self, q: float) -> float:
        """Exact linear-interpolated percentile ``q`` in ``[0, 1]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile must be in [0, 1]: {q}")
        return _percentile_of_sorted(self._sorted, q)

    def summary(self, percentiles=(0.50, 0.90, 0.99)) -> dict:
        """Common percentiles keyed like ``"p99"``."""
        return {
            _percentile_key(q): self.percentile(q) for q in percentiles
        }


def _percentile_key(q: float) -> str:
    return f"p{int(q * 100) if (q * 100).is_integer() else q * 100:g}"


def percentile_summary(values, percentiles=(0.50, 0.90, 0.99)) -> dict:
    """Common percentiles of a sample set, keyed like ``"p99"``."""
    return Percentiles(values).summary(percentiles)
