"""Exact percentile computation over raw latency samples.

Used by the benchmark coordinator for *reporting* (the paper's coordinator
"retrieves the request latency … of each request"). The control path uses
the bucketed histogram estimates instead — see
:mod:`repro.telemetry.histogram`.
"""

from __future__ import annotations

import math


def exact_percentile(values, q: float) -> float:
    """Exact linear-interpolated percentile (numpy's default method).

    Args:
        values: a non-empty iterable of numbers.
        q: percentile in ``[0, 1]``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1]: {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("cannot take a percentile of no samples")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def percentile_summary(values, percentiles=(0.50, 0.90, 0.99)) -> dict:
    """Common percentiles of a sample set, keyed like ``"p99"``."""
    return {
        f"p{int(q * 100) if (q * 100).is_integer() else q * 100:g}":
            exact_percentile(values, q)
        for q in percentiles
    }
