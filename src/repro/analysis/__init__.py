"""Exact statistics over captured benchmark records (reporting path)."""

from repro.analysis.critical_path import (
    BackendCriticalPath,
    critical_path,
    render_critical_path,
)
from repro.analysis.percentiles import exact_percentile, percentile_summary
from repro.analysis.stats import (
    latency_timeline,
    relative_decrease,
    rps_timeline,
    success_rate,
)

__all__ = [
    "BackendCriticalPath",
    "critical_path",
    "exact_percentile",
    "latency_timeline",
    "percentile_summary",
    "relative_decrease",
    "render_critical_path",
    "rps_timeline",
    "success_rate",
]
