"""Exact statistics over captured benchmark records (reporting path)."""

from repro.analysis.percentiles import exact_percentile, percentile_summary
from repro.analysis.stats import (
    latency_timeline,
    relative_decrease,
    rps_timeline,
    success_rate,
)

__all__ = [
    "exact_percentile",
    "latency_timeline",
    "percentile_summary",
    "relative_decrease",
    "rps_timeline",
    "success_rate",
]
