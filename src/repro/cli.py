"""Command-line interface: run scenarios, the hotel app, and paper figures.

Examples::

    python -m repro list
    python -m repro run --scenario scenario-1 --algorithm l3 --duration 120
    python -m repro live --algorithm l3 --duration 30 --report live.json
    python -m repro hotel --algorithm l3 --rps 200 --duration 120
    python -m repro figure fig9 --fast
"""

from __future__ import annotations

import argparse
import sys

from repro.balancers.factory import BALANCER_NAMES
from repro.bench.coordinator import (
    ENGINE_NAMES,
    run_hotel_benchmark,
    run_scenario_benchmark,
)
from repro.live.harness import LIVE_ALGORITHMS
from repro.tournament.grid import TOURNAMENT_SCENARIO_NAMES
from repro.tracing import TRACE_FORMATS
from repro.workloads.scenarios import SCENARIO_NAMES

FIGURES = ("fig1", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
           "fig11", "fig12", "elasticity")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'L3: Latency-aware Load Balancing in "
                    "Multi-Cluster Service Mesh' (Middleware '24)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "list", help="list available scenarios, algorithms and figures")

    run = commands.add_parser(
        "run", help="run one scenario under one balancing algorithm")
    run.add_argument("--scenario", choices=SCENARIO_NAMES,
                     default="scenario-1")
    run.add_argument("--scenario-file", metavar="FILE", default=None,
                     help="run a scenario loaded from a JSON trace file "
                          "instead of a built-in one")
    run.add_argument("--algorithm", choices=BALANCER_NAMES, default="l3")
    run.add_argument("--trace", metavar="OUT", default=None,
                     help="record per-request distributed traces and "
                          "write them to OUT (also prints the "
                          "critical-path latency breakdown)")
    run.add_argument("--trace-sample", type=float, default=1.0,
                     metavar="RATE",
                     help="deterministic head-sampling rate for --trace "
                          "(0..1, default 1.0)")
    run.add_argument("--trace-format", choices=TRACE_FORMATS,
                     default="otlp",
                     help="--trace output format: OTLP-style JSON or "
                          "Chrome trace events (Perfetto-loadable)")
    run.add_argument("--duration", type=float, default=120.0,
                     help="measured seconds (default 120)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--faults", metavar="SPEC", default=None,
                     help="inject faults: 'kind@start[+duration]"
                          "[:key=value...]' entries joined by ';' "
                          "(e.g. 'cluster-outage@30+30:cluster=cluster-2"
                          ":mode=blackhole'); see 'repro list' for kinds")
    run.add_argument("--autoscale", metavar="SPEC", default=None,
                     help="autoscale replica sets: 'scope[:key=value...]' "
                          "entries joined by ';', scope a cluster name or "
                          "'*' (e.g. '*:target=0.5:min=2:max=6'); see "
                          "'repro list' for keys; overrides the "
                          "scenario's own policies")
    run.add_argument("--request-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-attempt client deadline (off by default, "
                          "as in the paper; required to survive "
                          "blackhole faults)")
    run.add_argument("--outlier-ejection", action="store_true",
                     help="enable the consecutive-failure circuit "
                          "breaker (off by default, as in the paper)")
    run.add_argument("--engine", choices=ENGINE_NAMES,
                     default="fast",
                     help="request-lifecycle engine: 'fast' (pooled "
                          "callbacks, default), 'vector' (numpy-chunked "
                          "RNG + telemetry, needs the [fleet] extra) or "
                          "'process' (one generator per request); all "
                          "three produce byte-identical results")

    live = commands.add_parser(
        "live", help="run the live localhost testbed (real sockets, "
                     "wall-clock, same controller code)")
    live.add_argument("--scenario", choices=SCENARIO_NAMES,
                      default="scenario-1")
    live.add_argument("--scenario-file", metavar="FILE", default=None,
                      help="run a scenario loaded from a JSON trace file "
                           "instead of a built-in one")
    live.add_argument("--algorithm", choices=LIVE_ALGORITHMS, default="l3")
    live.add_argument("--duration", type=float, default=30.0,
                      help="wall-clock seconds of load (default 30)")
    live.add_argument("--port-base", type=int, default=18080,
                      help="first localhost port to bind (collisions walk "
                           "upward; default 18080)")
    live.add_argument("--seed", type=int, default=1)
    live.add_argument("--rps", type=float, default=100.0,
                      help="offered load (default 100; 0 uses the "
                           "scenario's own RPS series)")
    live.add_argument("--ha-replicas", type=int, default=1, metavar="N",
                      help="controller replicas competing over a lease "
                           "(default 1 = no HA)")
    live.add_argument("--lease-ttl", type=float, default=3.0,
                      metavar="SECONDS",
                      help="HA lease TTL: a dead leader is replaced "
                           "within this long (default 3)")
    live.add_argument("--faults", metavar="SPEC", default=None,
                      help="chaos schedule, same grammar as `run "
                           "--faults`; times are seconds into the run "
                           "(e.g. 'cluster-outage@10+10:cluster="
                           "cluster-2:mode=blackhole')")
    live.add_argument("--request-timeout", type=float, default=5.0,
                      metavar="SECONDS",
                      help="per-attempt client deadline; blackholed "
                           "targets need it to fail (default 5; "
                           "0 disables)")
    live.add_argument("--report", metavar="OUT", default=None,
                      help="write a JSON run report (latency summary, "
                           "weight trajectory, fault log, shutdown "
                           "state) to OUT")

    export = commands.add_parser(
        "export-trace", help="save a built-in scenario as a JSON trace")
    export.add_argument("scenario", choices=SCENARIO_NAMES)
    export.add_argument("path", help="output JSON file")

    hotel = commands.add_parser(
        "hotel", help="run the DeathStarBench hotel-reservation benchmark")
    hotel.add_argument("--algorithm", choices=BALANCER_NAMES, default="l3")
    hotel.add_argument("--rps", type=float, default=200.0)
    hotel.add_argument("--duration", type=float, default=120.0)
    hotel.add_argument("--seed", type=int, default=1)

    tournament = commands.add_parser(
        "tournament", help="race registered balancers across the "
                           "tournament scenario grid and print the "
                           "leaderboard")
    tournament.add_argument("--algorithms", nargs="+",
                            choices=BALANCER_NAMES, default=None,
                            metavar="ALG",
                            help="algorithms to race (default: every "
                                 "registered one)")
    tournament.add_argument("--scenarios", nargs="+",
                            choices=TOURNAMENT_SCENARIO_NAMES,
                            default=None, metavar="CELL",
                            help="grid cells to run (default: the full "
                                 "grid)")
    tournament.add_argument("--duration", type=float, default=120.0,
                            help="measured seconds per cell (default 120)")
    tournament.add_argument("--repetitions", type=int, default=1,
                            metavar="N",
                            help="seeds per cell; scores are averaged "
                                 "(default 1)")
    tournament.add_argument("--seed", type=int, default=1,
                            help="first seed (repetition r uses seed+r)")
    tournament.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes (default 1 = serial; "
                                 "0 = all CPUs; results are identical "
                                 "for every value)")
    tournament.add_argument("--output", metavar="OUT", default=None,
                            help="write the tournament document "
                                 "(grid + leaderboard) as JSON to OUT")
    tournament.add_argument("--check", action="store_true",
                            help="exit nonzero unless L3 beats "
                                 "round-robin on P99 in the "
                                 "degraded-backend cell")

    figure = commands.add_parser(
        "figure", help="regenerate one of the paper's figures")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--fast", action="store_true",
                        help="short runs (2-minute trace prefixes)")
    figure.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the figure's "
                             "(scenario x algorithm x seed) sweep "
                             "(default 1 = serial; 0 = all CPUs; results "
                             "are identical for every value)")

    return parser


def _export_traces(tracer, path: str, fmt: str) -> None:
    from repro.analysis import critical_path, render_critical_path
    from repro.tracing import export_trace

    export_trace(tracer.recorder, path, fmt)
    spans = tracer.recorder.finished_spans()
    print(f"  wrote {len(spans)} spans "
          f"({len(tracer.recorder.traces())} traces, "
          f"{tracer.recorder.dropped_traces} dropped) to {path} [{fmt}]")
    breakdown = critical_path(tracer.recorder)
    if breakdown:
        print(render_critical_path(breakdown))


def _print_result(result) -> None:
    from repro.analysis.report import render_spectrum

    print(f"{result.scenario} / {result.algorithm} (seed {result.seed}, "
          f"{result.duration_s:.0f}s): {result.request_count} requests")
    print(render_spectrum(result.records, title="latency spectrum"))
    print(f"  success rate {result.success_rate * 100.0:.2f} %")
    if result.controller_weights:
        print(f"  final weights {result.controller_weights}")
    if getattr(result, "final_replicas", None):
        print(f"  autoscale: {len(result.autoscale_events)} scale events, "
              f"{result.total_replica_seconds:.0f} replica-seconds, "
              f"final replicas {result.final_replicas}")


def _write_live_report(result, harness, path: str) -> None:
    """One JSON document per live run — the CI smoke job's artifact."""
    import json

    latencies = result.latency_percentiles()
    report = {
        "scenario": result.scenario,
        "algorithm": result.algorithm,
        "seed": result.seed,
        "duration_s": result.duration_s,
        "requests": result.request_count,
        "success_rate": result.success_rate,
        "latency_ms": {
            key: value * 1000.0
            for key, value in latencies.summary().items()
        } if result.records else {},
        "final_weights": result.controller_weights,
        "weight_updates": len(harness.weight_history),
        "ports": harness.ports,
        "clean_shutdown": harness.clean_shutdown,
        "leaked_tasks": harness.leaked_tasks,
        "fault_log": [[when, description]
                      for when, description in harness.fault_log],
        "chaos_errors": harness.chaos_errors,
        "lease_transitions": [[when, name]
                              for when, name in harness.lease_transitions],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  wrote report to {path}")


def _chart_bar_experiment(experiment) -> None:
    from repro.analysis.ascii_chart import render_bar_chart

    p99s = {
        label: row["p99_ms"]
        for label, row in experiment.table.rows.items()
        if "p99_ms" in row
    }
    if p99s:
        print()
        print(render_bar_chart(p99s, unit=" ms", title="P99 latency"))


def _chart_series(series: dict, pick, title: str) -> None:
    from repro.analysis.ascii_chart import render_line_chart

    chosen = {name: pts for name, pts in series.items() if pick(name)}
    if chosen:
        print()
        print(render_line_chart(chosen, title=title))


def _run_figure(name: str, fast: bool, jobs: int | None = 1) -> None:
    from repro.bench import experiments

    duration = 120.0 if fast else 600.0
    hotel_duration = 120.0 if fast else 300.0
    repetitions = 1 if fast else 3

    if name == "fig1":
        experiment = experiments.fig1_2_trace_characteristics()
        print(experiment.render())
        _chart_series(
            experiment.series,
            lambda n: n.startswith("scenario-1/") and n.endswith("p99_ms"),
            "scenario-1 per-cluster P99 (ms)")
    elif name == "fig4":
        experiment = experiments.fig4_rate_control_curves()
        print(experiment.render())
        _chart_series(experiment.series, lambda n: True,
                      "rate-control output weight vs relative change")
    elif name == "fig6":
        experiment = experiments.fig6_trace_characteristics()
        print(experiment.render())
        _chart_series(
            experiment.series,
            lambda n: n.startswith("scenario-4/"),
            "scenario-4 per-cluster P99 (ms)")
    elif name == "fig7":
        print(experiments.fig7_penalty_factor_sweep(
            duration_s=duration, repetitions=min(repetitions, 2),
            jobs=jobs).render())
    elif name == "fig8":
        experiment = experiments.fig8_ewma_vs_peakewma(
            duration_s=duration, repetitions=repetitions, jobs=jobs)
        print(experiment.render())
        _chart_bar_experiment(experiment)
    elif name == "fig9":
        experiment = experiments.fig9_hotel_reservation(
            duration_s=hotel_duration, repetitions=repetitions, jobs=jobs)
        print(experiment.render())
        _chart_bar_experiment(experiment)
    elif name == "fig10":
        for experiment in experiments.fig10_scenario_comparison(
                duration_s=duration, repetitions=repetitions,
                jobs=jobs).values():
            print(experiment.render())
            _chart_bar_experiment(experiment)
            print()
    elif name in ("fig11", "fig12"):
        for experiment in experiments.fig11_12_failure_scenarios(
                duration_s=duration, repetitions=repetitions,
                jobs=jobs).values():
            print(experiment.render())
            _chart_bar_experiment(experiment)
            print()
    elif name == "elasticity":
        experiment = experiments.fig_elasticity(
            duration_s=min(duration, 360.0), jobs=jobs)
        print(experiment.render())
        _chart_bar_experiment(experiment)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        from repro.faults import FAULT_KINDS

        from repro.autoscale import AUTOSCALE_SPEC_KEYS

        print("scenarios: ", ", ".join(SCENARIO_NAMES))
        print("algorithms:", ", ".join(BALANCER_NAMES))
        print("figures:   ", ", ".join(FIGURES))
        print("faults:    ", ", ".join(FAULT_KINDS))
        print("autoscale: ", ", ".join(AUTOSCALE_SPEC_KEYS))
        print("tournament:", ", ".join(TOURNAMENT_SCENARIO_NAMES))
        return 0

    if args.command == "run":
        scenario = args.scenario
        if args.scenario_file is not None:
            from repro.workloads.traceio import load_scenario

            scenario = load_scenario(args.scenario_file)
        faults = None
        env = None
        tracer = None
        autoscale = None
        if args.faults is not None:
            from repro.bench.coordinator import SCENARIO_SERVICE
            from repro.faults import parse_fault_spec
            from repro.workloads.scenarios import build_scenario

            topology = (build_scenario(scenario)
                        if isinstance(scenario, str) else scenario)
            faults = parse_fault_spec(
                args.faults, clusters=set(topology.clusters()),
                services={SCENARIO_SERVICE})
        if args.autoscale is not None:
            from repro.autoscale import parse_autoscale_spec
            from repro.workloads.scenarios import build_scenario

            built = (build_scenario(scenario)
                     if isinstance(scenario, str) else scenario)
            autoscale = parse_autoscale_spec(
                args.autoscale, built.clusters())
        if args.request_timeout is not None or args.outlier_ejection:
            from repro.bench.coordinator import ScenarioBenchConfig
            from repro.mesh.ejection import OutlierEjectionConfig

            env = ScenarioBenchConfig(
                request_timeout_s=args.request_timeout,
                outlier_ejection=(OutlierEjectionConfig()
                                  if args.outlier_ejection else None))
        if args.trace is not None:
            from repro.tracing import MeshTracer, TracingConfig

            tracer = MeshTracer(TracingConfig(sample_rate=args.trace_sample))
        result = run_scenario_benchmark(
            scenario, args.algorithm, duration_s=args.duration,
            seed=args.seed, env=env, faults=faults, tracer=tracer,
            engine=args.engine, autoscale=autoscale)
        _print_result(result)
        if tracer is not None:
            _export_traces(tracer, args.trace, args.trace_format)
        return 0

    if args.command == "live":
        from repro.live import LiveConfig, LiveHarness

        scenario = args.scenario
        if args.scenario_file is not None:
            from repro.workloads.traceio import load_scenario

            scenario = load_scenario(args.scenario_file)
        config = LiveConfig(
            algorithm=args.algorithm, duration_s=args.duration,
            port_base=args.port_base, seed=args.seed,
            rps=args.rps if args.rps > 0 else None,
            ha_replicas=args.ha_replicas, lease_ttl_s=args.lease_ttl,
            faults=args.faults,
            request_timeout_s=(args.request_timeout
                               if args.request_timeout > 0 else None))
        harness = LiveHarness(scenario, config)
        result = harness.run()
        _print_result(result)
        for when, description in harness.fault_log:
            print(f"  [chaos {when:7.2f}s] {description}")
        if harness.lease_transitions:
            print(f"  lease transitions {harness.lease_transitions}")
        if harness.chaos_errors:
            print(f"  CHAOS ERRORS: {harness.chaos_errors}")
        if not harness.clean_shutdown:
            print(f"  DIRTY SHUTDOWN: leaked tasks {harness.leaked_tasks}")
        if args.report is not None:
            _write_live_report(result, harness, args.report)
        return (0 if harness.clean_shutdown
                and not harness.chaos_errors else 1)

    if args.command == "export-trace":
        from repro.workloads.scenarios import build_scenario
        from repro.workloads.traceio import save_scenario

        save_scenario(build_scenario(args.scenario), args.path)
        print(f"wrote {args.scenario} to {args.path}")
        return 0

    if args.command == "hotel":
        result = run_hotel_benchmark(
            args.algorithm, rps=args.rps, duration_s=args.duration,
            seed=args.seed)
        _print_result(result)
        return 0

    if args.command == "tournament":
        import json

        from repro.tournament import (
            check_contract,
            render_grid,
            render_leaderboard,
            run_tournament,
            tournament_json,
        )

        result = run_tournament(
            algorithms=args.algorithms, scenarios=args.scenarios,
            duration_s=args.duration, repetitions=args.repetitions,
            seed0=args.seed, jobs=args.jobs if args.jobs > 0 else None)
        document = tournament_json(result)
        print(render_grid(result))
        print()
        print(render_leaderboard(document["leaderboard"]))
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote tournament document to {args.output}")
        if args.check:
            failures = check_contract(result)
            if failures:
                for failure in failures:
                    print(f"CHECK FAILED: {failure}")
                return 1
            print("check OK: l3 beat round-robin on degraded-backend P99")
        return 0

    if args.command == "figure":
        # --jobs 0 means "all CPUs" (run_cells takes None for that).
        _run_figure(args.name, args.fast,
                    jobs=args.jobs if args.jobs > 0 else None)
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
