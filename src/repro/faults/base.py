"""Fault base class and the injector that schedules faults onto a mesh.

A fault is a declarative description of one disruption: *what* breaks
(a replica, a cluster, a link, the scraper, the controller), *when*
(``at_s``), and — for episode faults — *for how long* (``duration_s``).
The :class:`FaultInjector` turns these descriptions into simulator
callbacks against a concrete :class:`~repro.mesh.mesh.ServiceMesh`, so the
same fault list can be replayed against any topology, balancer, or seed.

Fault times are relative to whatever offset the caller passes to
:meth:`FaultInjector.schedule` — the benchmark coordinator offsets them by
its warm-up, so ``at_s=60`` means "60 seconds into the measured period".
"""

from __future__ import annotations

import abc
import typing

from repro.errors import ConfigError


class Fault(abc.ABC):
    """One schedulable disruption.

    Concrete faults are frozen dataclasses carrying ``at_s`` (start time)
    and, where the disruption is an episode, ``duration_s`` (``None``
    means the fault is never reverted).
    """

    at_s: float
    duration_s: float | None = None

    @abc.abstractmethod
    def apply(self, injector: "FaultInjector") -> None:
        """Make the disruption happen (called at the scheduled time)."""

    def revert(self, injector: "FaultInjector") -> None:
        """Undo the disruption (called at ``at_s + duration_s``)."""

    def validate(self) -> None:
        """Reject impossible schedules before anything is wired up."""
        if self.at_s < 0:
            raise ConfigError(f"fault start must be >= 0: {self.at_s}")
        duration = getattr(self, "duration_s", None)
        if duration is not None and duration <= 0:
            raise ConfigError(f"fault duration must be positive: {duration}")

    def window(self) -> tuple[float, float]:
        """The half-open ``[start, end)`` activity window of this fault.

        A fault without ``duration_s`` is never reverted, so its window
        extends to infinity. Instantaneous heal events (e.g. an explicit
        :class:`~repro.faults.faults.ReplicaRestart`) override this to an
        empty window — they disrupt nothing.
        """
        duration = getattr(self, "duration_s", None)
        end = self.at_s + duration if duration is not None else float("inf")
        return self.at_s, end

    def targets(self) -> tuple:
        """Hashable identities of what this fault disrupts.

        Two faults of the same kind sharing a target with overlapping
        windows are an inconsistent schedule (the second apply/revert
        would clobber the first's state), rejected by
        :func:`repro.faults.spec.validate_fault_spec`.
        """
        return (type(self).__name__,)


class FaultInjector:
    """Schedules faults against one mesh (plus its control-plane parts).

    Args:
        mesh: the target :class:`~repro.mesh.mesh.ServiceMesh`.
        scraper: the telemetry scraper, if scrape faults are to be usable.
        controllers: reconcile-loop controllers (anything exposing
            ``pause()``/``resume()``), if controller faults are to be
            usable.
        replicas: HA controller replicas (anything exposing
            ``crash()``/``recover()``, normally
            :class:`~repro.core.leader.ControllerReplica`), if
            controller-crash faults are to be usable.

    Every applied/reverted fault is appended to :attr:`log` as
    ``(sim_time, description)`` — examples and benchmarks print it to
    correlate fault timing with observed behaviour.
    """

    def __init__(self, mesh, scraper=None, controllers: typing.Sequence = (),
                 replicas: typing.Sequence = ()):
        self.mesh = mesh
        self.sim = mesh.sim
        self.scraper = scraper
        self.controllers = [c for c in controllers if c is not None]
        self.replicas = list(replicas)
        self.log: list[tuple[float, str]] = []

    def schedule(self, fault: Fault, offset_s: float = 0.0) -> None:
        """Register one fault's apply (and revert) with the simulator."""
        fault.validate()
        start = offset_s + fault.at_s
        if start < self.sim.now:
            raise ConfigError(
                f"fault start {start} is in the past (now={self.sim.now})")
        self.sim.call_at(start, self._apply, fault)
        duration = getattr(fault, "duration_s", None)
        if duration is not None:
            self.sim.call_at(start + duration, self._revert, fault)

    def schedule_all(self, faults: typing.Iterable[Fault],
                     offset_s: float = 0.0) -> None:
        """Register every fault in ``faults``."""
        for fault in faults:
            self.schedule(fault, offset_s=offset_s)

    def record(self, description: str) -> None:
        """Append one line to the fault log at the current sim time."""
        self.log.append((self.sim.now, description))

    def _apply(self, fault: Fault) -> None:
        fault.apply(self)
        self.record(f"apply {fault}")

    def _revert(self, fault: Fault) -> None:
        fault.revert(self)
        self.record(f"revert {fault}")

    # ---------------- helpers used by concrete faults ----------------- #

    def backends_in(self, cluster: str, service: str | None = None) -> list:
        """Every backend deployed in ``cluster`` (optionally one service's).

        Raises :class:`ConfigError` when the selection is empty — a fault
        that targets nothing is a misconfigured experiment, not a no-op.
        """
        services = [service] if service is not None else self.mesh.services()
        backends = []
        for name in services:
            deployment = self.mesh.deployment(name)
            backend = deployment.backends.get(cluster)
            if backend is not None:
                backends.append(backend)
        if not backends:
            raise ConfigError(
                f"no backends in cluster {cluster!r}"
                + (f" for service {service!r}" if service else ""))
        return backends

    def require_scraper(self):
        if self.scraper is None:
            raise ConfigError(
                "this fault needs a scraper; construct the FaultInjector "
                "with scraper=...")
        return self.scraper

    def require_controllers(self) -> list:
        if not self.controllers:
            raise ConfigError(
                "this fault needs controllers; construct the FaultInjector "
                "with controllers=[...] (only controller-based balancers "
                "such as l3/c3 have one)")
        return self.controllers

    def require_replica(self, index: int):
        if not self.replicas:
            raise ConfigError(
                "this fault needs controller replicas; construct the "
                "injector with replicas=[...] (HA mode, ha_replicas > 1)")
        if not 0 <= index < len(self.replicas):
            raise ConfigError(
                f"no controller replica {index}; only "
                f"{len(self.replicas)} exist")
        return self.replicas[index]
