"""The concrete fault types (paper §5.2.3's failure injection, generalised).

Every fault is a frozen dataclass; see :mod:`repro.faults.base` for the
scheduling model. Data-plane faults (crashes, outages, link faults) need
only the mesh; :class:`ScrapeOutage` needs the injector constructed with a
scraper, :class:`ControllerPause` with controllers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faults.base import Fault, FaultInjector
from repro.mesh.replica import DOWN_MODES


def _check_mode(mode: str) -> None:
    if mode not in DOWN_MODES:
        raise ConfigError(f"down mode must be one of {DOWN_MODES}: {mode!r}")


@dataclass(frozen=True)
class ReplicaCrash(Fault):
    """One replica goes down; its capacity is gone until a restart.

    With ``duration_s`` set, the replica restarts on its own; otherwise
    pair it with an explicit :class:`ReplicaRestart`.
    """

    service: str
    cluster: str
    at_s: float
    replica_index: int = 0
    duration_s: float | None = None
    mode: str = "fail_fast"

    def validate(self) -> None:
        super().validate()
        _check_mode(self.mode)
        if self.replica_index < 0:
            raise ConfigError(
                f"replica index must be >= 0: {self.replica_index}")

    def _replica(self, injector: FaultInjector):
        backend = injector.mesh.deployment(self.service).backend_in(
            self.cluster)
        if self.replica_index >= len(backend.replicas):
            raise ConfigError(
                f"backend {backend.name} has {len(backend.replicas)} "
                f"replicas; index {self.replica_index} does not exist")
        return backend.replicas[self.replica_index]

    def apply(self, injector: FaultInjector) -> None:
        self._replica(injector).crash(self.mode)

    def revert(self, injector: FaultInjector) -> None:
        self._replica(injector).restart()


@dataclass(frozen=True)
class ReplicaRestart(Fault):
    """Bring one crashed replica back up (capacity returns)."""

    service: str
    cluster: str
    at_s: float
    replica_index: int = 0

    def validate(self) -> None:
        super().validate()
        if self.replica_index < 0:
            raise ConfigError(
                f"replica index must be >= 0: {self.replica_index}")

    def apply(self, injector: FaultInjector) -> None:
        backend = injector.mesh.deployment(self.service).backend_in(
            self.cluster)
        if self.replica_index >= len(backend.replicas):
            raise ConfigError(
                f"backend {backend.name} has {len(backend.replicas)} "
                f"replicas; index {self.replica_index} does not exist")
        backend.replicas[self.replica_index].restart()


@dataclass(frozen=True)
class ClusterOutage(Fault):
    """Every replica of a cluster goes down (the paper's failing cluster).

    ``mode="fail_fast"`` models a cluster answering errors (the scenario
    traces' success-rate drops); ``mode="blackhole"`` models the harder
    case — nothing answers at all, and only a client-side timeout turns
    the silence into a signal L3 can see.

    Args:
        cluster: the failing cluster.
        service: restrict the outage to one service's backend there
            (``None`` takes down every service's deployment).
    """

    cluster: str
    at_s: float
    duration_s: float | None = None
    mode: str = "fail_fast"
    service: str | None = None

    def validate(self) -> None:
        super().validate()
        _check_mode(self.mode)

    def apply(self, injector: FaultInjector) -> None:
        for backend in injector.backends_in(self.cluster, self.service):
            backend.crash(self.mode)

    def revert(self, injector: FaultInjector) -> None:
        for backend in injector.backends_in(self.cluster, self.service):
            backend.restart()


@dataclass(frozen=True)
class LinkPartition(Fault):
    """A directed cluster pair drops all traffic (delay becomes infinite).

    In-flight requests on the link at partition time keep their already
    sampled delays; requests *entering* the link while partitioned hang
    until the client's deadline fires (or forever without one) — healing
    the partition does not resurrect connections it killed.
    """

    src: str
    dst: str
    at_s: float
    duration_s: float | None = None
    symmetric: bool = True

    def apply(self, injector: FaultInjector) -> None:
        injector.mesh.network.partition(
            self.src, self.dst, symmetric=self.symmetric)

    def revert(self, injector: FaultInjector) -> None:
        injector.mesh.network.heal_partition(
            self.src, self.dst, symmetric=self.symmetric)


@dataclass(frozen=True)
class LinkDegradation(Fault):
    """A cluster pair's delay is inflated: ``delay * multiplier + extra``."""

    src: str
    dst: str
    at_s: float
    duration_s: float | None = None
    multiplier: float = 1.0
    extra_delay_s: float = 0.0
    symmetric: bool = True

    def validate(self) -> None:
        super().validate()
        if self.multiplier < 1.0:
            raise ConfigError(
                f"degradation multiplier must be >= 1: {self.multiplier}")
        if self.extra_delay_s < 0:
            raise ConfigError(
                f"extra delay must be >= 0: {self.extra_delay_s}")
        if self.multiplier == 1.0 and self.extra_delay_s == 0.0:
            raise ConfigError(
                "degradation needs a multiplier > 1 or extra delay > 0")

    def apply(self, injector: FaultInjector) -> None:
        injector.mesh.network.degrade(
            self.src, self.dst, multiplier=self.multiplier,
            extra_delay_s=self.extra_delay_s, symmetric=self.symmetric)

    def revert(self, injector: FaultInjector) -> None:
        injector.mesh.network.heal_degradation(
            self.src, self.dst, symmetric=self.symmetric)


@dataclass(frozen=True)
class ScrapeOutage(Fault):
    """The telemetry scraper stops collecting (Prometheus outage).

    The metrics store receives no new samples, so the controller's
    windowed queries come back empty and its EWMAs decay toward their
    defaults (§4's no-traffic behaviour, exercised for *every* backend at
    once).
    """

    at_s: float
    duration_s: float | None = None

    def apply(self, injector: FaultInjector) -> None:
        injector.require_scraper().pause()

    def revert(self, injector: FaultInjector) -> None:
        injector.require_scraper().resume()


@dataclass(frozen=True)
class ControllerPause(Fault):
    """The reconcile loop stalls (operator crash-loop / leader loss).

    Weights freeze at their last pushed values; the data plane keeps
    serving with a stale TrafficSplit until the controller resumes.
    """

    at_s: float
    duration_s: float | None = None

    def apply(self, injector: FaultInjector) -> None:
        for controller in injector.require_controllers():
            controller.pause()

    def revert(self, injector: FaultInjector) -> None:
        for controller in injector.require_controllers():
            controller.resume()
