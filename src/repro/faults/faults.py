"""The concrete fault types (paper §5.2.3's failure injection, generalised).

Every fault is a frozen dataclass; see :mod:`repro.faults.base` for the
scheduling model. Data-plane faults (crashes, outages, link faults) need
only the mesh; :class:`ScrapeOutage` needs the injector constructed with a
scraper, :class:`ControllerPause` with controllers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faults.base import Fault, FaultInjector
from repro.mesh.replica import DOWN_MODES


def _check_mode(mode: str) -> None:
    if mode not in DOWN_MODES:
        raise ConfigError(f"down mode must be one of {DOWN_MODES}: {mode!r}")


# How a scrape outage manifests on the live substrate: "error" answers
# 500 to every /metrics GET, "stall" accepts and never answers (the
# scraper's fetch timeout turns the silence into a failed scrape). The
# simulator has no wire to fail, so there an outage is simply the
# absence of samples regardless of mode.
SCRAPE_OUTAGE_MODES = ("error", "stall")


@dataclass(frozen=True)
class ReplicaCrash(Fault):
    """One replica goes down; its capacity is gone until a restart.

    With ``duration_s`` set, the replica restarts on its own; otherwise
    pair it with an explicit :class:`ReplicaRestart`.
    """

    service: str
    cluster: str
    at_s: float
    replica_index: int = 0
    duration_s: float | None = None
    mode: str = "fail_fast"

    def validate(self) -> None:
        super().validate()
        _check_mode(self.mode)
        if self.replica_index < 0:
            raise ConfigError(
                f"replica index must be >= 0: {self.replica_index}")

    def _replica(self, injector: FaultInjector):
        backend = injector.mesh.deployment(self.service).backend_in(
            self.cluster)
        if self.replica_index >= len(backend.replicas):
            raise ConfigError(
                f"backend {backend.name} has {len(backend.replicas)} "
                f"replicas; index {self.replica_index} does not exist")
        return backend.replicas[self.replica_index]

    def apply(self, injector: FaultInjector) -> None:
        self._replica(injector).crash(self.mode)

    def revert(self, injector: FaultInjector) -> None:
        self._replica(injector).restart()

    def targets(self) -> tuple:
        return (("replica", self.service, self.cluster,
                 self.replica_index),)


@dataclass(frozen=True)
class ReplicaRestart(Fault):
    """Bring one crashed replica back up (capacity returns)."""

    service: str
    cluster: str
    at_s: float
    replica_index: int = 0

    def validate(self) -> None:
        super().validate()
        if self.replica_index < 0:
            raise ConfigError(
                f"replica index must be >= 0: {self.replica_index}")

    def apply(self, injector: FaultInjector) -> None:
        backend = injector.mesh.deployment(self.service).backend_in(
            self.cluster)
        if self.replica_index >= len(backend.replicas):
            raise ConfigError(
                f"backend {backend.name} has {len(backend.replicas)} "
                f"replicas; index {self.replica_index} does not exist")
        backend.replicas[self.replica_index].restart()

    def window(self) -> tuple[float, float]:
        # An instantaneous heal event disrupts nothing: empty window.
        return self.at_s, self.at_s

    def targets(self) -> tuple:
        return (("replica", self.service, self.cluster,
                 self.replica_index),)


@dataclass(frozen=True)
class ClusterOutage(Fault):
    """Every replica of a cluster goes down (the paper's failing cluster).

    ``mode="fail_fast"`` models a cluster answering errors (the scenario
    traces' success-rate drops); ``mode="blackhole"`` models the harder
    case — nothing answers at all, and only a client-side timeout turns
    the silence into a signal L3 can see.

    Args:
        cluster: the failing cluster.
        service: restrict the outage to one service's backend there
            (``None`` takes down every service's deployment).
    """

    cluster: str
    at_s: float
    duration_s: float | None = None
    mode: str = "fail_fast"
    service: str | None = None

    def validate(self) -> None:
        super().validate()
        _check_mode(self.mode)

    def apply(self, injector: FaultInjector) -> None:
        for backend in injector.backends_in(self.cluster, self.service):
            backend.crash(self.mode)

    def revert(self, injector: FaultInjector) -> None:
        for backend in injector.backends_in(self.cluster, self.service):
            backend.restart()

    def targets(self) -> tuple:
        return (("cluster", self.cluster, self.service),)


@dataclass(frozen=True)
class LinkPartition(Fault):
    """A directed cluster pair drops all traffic (delay becomes infinite).

    In-flight requests on the link at partition time keep their already
    sampled delays; requests *entering* the link while partitioned hang
    until the client's deadline fires (or forever without one) — healing
    the partition does not resurrect connections it killed.
    """

    src: str
    dst: str
    at_s: float
    duration_s: float | None = None
    symmetric: bool = True

    def apply(self, injector: FaultInjector) -> None:
        injector.mesh.network.partition(
            self.src, self.dst, symmetric=self.symmetric)

    def revert(self, injector: FaultInjector) -> None:
        injector.mesh.network.heal_partition(
            self.src, self.dst, symmetric=self.symmetric)

    def targets(self) -> tuple:
        links = (("link-partition", self.src, self.dst),)
        if self.symmetric:
            links += (("link-partition", self.dst, self.src),)
        return links


@dataclass(frozen=True)
class LinkDegradation(Fault):
    """A cluster pair's delay is inflated: ``delay * multiplier + extra``."""

    src: str
    dst: str
    at_s: float
    duration_s: float | None = None
    multiplier: float = 1.0
    extra_delay_s: float = 0.0
    symmetric: bool = True

    def validate(self) -> None:
        super().validate()
        if self.multiplier < 1.0:
            raise ConfigError(
                f"degradation multiplier must be >= 1: {self.multiplier}")
        if self.extra_delay_s < 0:
            raise ConfigError(
                f"extra delay must be >= 0: {self.extra_delay_s}")
        if self.multiplier == 1.0 and self.extra_delay_s == 0.0:
            raise ConfigError(
                "degradation needs a multiplier > 1 or extra delay > 0")

    def apply(self, injector: FaultInjector) -> None:
        injector.mesh.network.degrade(
            self.src, self.dst, multiplier=self.multiplier,
            extra_delay_s=self.extra_delay_s, symmetric=self.symmetric)

    def revert(self, injector: FaultInjector) -> None:
        injector.mesh.network.heal_degradation(
            self.src, self.dst, symmetric=self.symmetric)

    def targets(self) -> tuple:
        links = (("link-degradation", self.src, self.dst),)
        if self.symmetric:
            links += (("link-degradation", self.dst, self.src),)
        return links


@dataclass(frozen=True)
class ScrapeOutage(Fault):
    """The telemetry scraper stops collecting (Prometheus outage).

    The metrics store receives no new samples, so the controller's
    windowed queries come back empty and its EWMAs decay toward their
    defaults (§4's no-traffic behaviour, exercised for *every* backend at
    once).

    Args:
        mode: how the outage manifests on the live substrate — ``"error"``
            (every /metrics GET answers 500) or ``"stall"`` (the page
            never answers; the scraper's fetch timeout fires). The
            simulator ignores the mode: an outage is the absence of
            samples either way.
    """

    at_s: float
    duration_s: float | None = None
    mode: str = "error"

    def validate(self) -> None:
        super().validate()
        if self.mode not in SCRAPE_OUTAGE_MODES:
            raise ConfigError(
                f"scrape outage mode must be one of {SCRAPE_OUTAGE_MODES}: "
                f"{self.mode!r}")

    def apply(self, injector: FaultInjector) -> None:
        injector.require_scraper().pause(self.mode)

    def revert(self, injector: FaultInjector) -> None:
        injector.require_scraper().resume()


@dataclass(frozen=True)
class ControllerPause(Fault):
    """The reconcile loop stalls (operator crash-loop / leader loss).

    Weights freeze at their last pushed values; the data plane keeps
    serving with a stale TrafficSplit until the controller resumes.
    """

    at_s: float
    duration_s: float | None = None

    def apply(self, injector: FaultInjector) -> None:
        for controller in injector.require_controllers():
            controller.pause()

    def revert(self, injector: FaultInjector) -> None:
        for controller in injector.require_controllers():
            controller.resume()


@dataclass(frozen=True)
class ControllerCrash(Fault):
    """One controller replica dies (stops renewing its lease).

    Only meaningful for HA deployments — N replicas competing over a
    :class:`~repro.core.leader.LeaseLock` — so the injector must be
    constructed with ``replicas=[...]``. Crashing the leader opens a
    leaderless window bounded by the lease TTL, during which the last
    pushed weights keep serving; a standby takes over when the lease
    expires. With ``duration_s`` set the replica recovers and rejoins
    the election (it does not preempt the new leader).
    """

    at_s: float
    duration_s: float | None = None
    replica_index: int = 0

    def validate(self) -> None:
        super().validate()
        if self.replica_index < 0:
            raise ConfigError(
                f"replica index must be >= 0: {self.replica_index}")

    def apply(self, injector: FaultInjector) -> None:
        injector.require_replica(self.replica_index).crash()

    def revert(self, injector: FaultInjector) -> None:
        injector.require_replica(self.replica_index).recover()

    def targets(self) -> tuple:
        return (("controller-replica", self.replica_index),)
