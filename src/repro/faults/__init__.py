"""Composable fault injection for the simulated mesh (resilience testing).

The paper's headline resilience result (§5.2.3, Figs. 11-12) is that L3
reroutes around a failing cluster within one reconcile interval. This
package makes such failures *first-class*: faults are schedulable
disruptions applied to a live mesh — replicas crash and restart, whole
clusters go dark (fast-failing or blackholing), links partition or
degrade, the scraper misses windows, the controller stalls — instead of
pre-baked success-rate traces.

Quickstart::

    from repro.faults import ClusterOutage, FaultInjector

    injector = FaultInjector(mesh, scraper=scraper,
                             controllers=[balancer.controller])
    injector.schedule(ClusterOutage("cluster-2", at_s=60.0,
                                    duration_s=30.0, mode="blackhole"))

or, through the benchmark coordinator::

    run_scenario_benchmark("scenario-1", "l3", faults=[...], ...)

Blackhole faults need a client-side deadline to be survivable — see
``request_timeout_s`` on :class:`~repro.bench.coordinator.ScenarioBenchConfig`
and :class:`~repro.mesh.proxy.ClientProxy`.
"""

from repro.errors import FaultSpecError
from repro.faults.base import Fault, FaultInjector
from repro.faults.faults import (
    ClusterOutage,
    ControllerCrash,
    ControllerPause,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
    ReplicaRestart,
    ScrapeOutage,
)
from repro.faults.spec import (
    FAULT_KINDS,
    fault_from_dict,
    fault_to_dict,
    parse_fault_entry,
    parse_fault_spec,
    validate_fault_spec,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultSpecError",
    "ReplicaCrash",
    "ReplicaRestart",
    "ClusterOutage",
    "LinkPartition",
    "LinkDegradation",
    "ScrapeOutage",
    "ControllerPause",
    "ControllerCrash",
    "FAULT_KINDS",
    "fault_from_dict",
    "fault_to_dict",
    "parse_fault_entry",
    "parse_fault_spec",
    "validate_fault_spec",
]
