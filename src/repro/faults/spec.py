"""Parse compact fault specifications (the CLI's ``--faults`` flag).

Grammar (whitespace around separators is ignored)::

    spec     := entry (";" entry)*
    entry    := kind "@" start ["+" duration] (":" key "=" value)*
    start    := seconds (relative to the measured period)
    duration := seconds

Examples::

    cluster-outage@60+30:cluster=cluster-2:mode=blackhole
    replica-crash@10+40:service=api:cluster=cluster-1:index=2
    link-partition@30+20:src=cluster-1:dst=cluster-2
    link-degradation@30+60:src=cluster-1:dst=cluster-3:multiplier=5
    scrape-outage@40+25
    controller-pause@50+15
    cluster-outage@60+30:cluster=cluster-2 ; scrape-outage@90+10

Each kind maps onto the dataclass of the same name in
:mod:`repro.faults.faults`; keys map onto its remaining fields.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.faults.base import Fault
from repro.faults.faults import (
    ClusterOutage,
    ControllerPause,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
    ReplicaRestart,
    ScrapeOutage,
)

# kind -> (fault class, {spec key -> constructor kwarg}, required keys)
_KINDS: dict[str, tuple[type, dict[str, str], tuple[str, ...]]] = {
    "replica-crash": (
        ReplicaCrash,
        {"service": "service", "cluster": "cluster",
         "index": "replica_index", "mode": "mode"},
        ("service", "cluster")),
    "replica-restart": (
        ReplicaRestart,
        {"service": "service", "cluster": "cluster",
         "index": "replica_index"},
        ("service", "cluster")),
    "cluster-outage": (
        ClusterOutage,
        {"cluster": "cluster", "mode": "mode", "service": "service"},
        ("cluster",)),
    "link-partition": (
        LinkPartition,
        {"src": "src", "dst": "dst", "symmetric": "symmetric"},
        ("src", "dst")),
    "link-degradation": (
        LinkDegradation,
        {"src": "src", "dst": "dst", "multiplier": "multiplier",
         "extra": "extra_delay_s", "symmetric": "symmetric"},
        ("src", "dst")),
    "scrape-outage": (ScrapeOutage, {}, ()),
    "controller-pause": (ControllerPause, {}, ()),
}

FAULT_KINDS = tuple(sorted(_KINDS))

_INT_KWARGS = ("replica_index",)
_FLOAT_KWARGS = ("multiplier", "extra_delay_s")
_BOOL_KWARGS = ("symmetric",)


def _coerce(kwarg: str, value: str):
    try:
        if kwarg in _INT_KWARGS:
            return int(value)
        if kwarg in _FLOAT_KWARGS:
            return float(value)
    except ValueError:
        raise ConfigError(
            f"fault spec: {kwarg} needs a number, got {value!r}") from None
    if kwarg in _BOOL_KWARGS:
        lowered = value.lower()
        if lowered in ("true", "yes", "1"):
            return True
        if lowered in ("false", "no", "0"):
            return False
        raise ConfigError(
            f"fault spec: {kwarg} needs a boolean, got {value!r}")
    return value


def _parse_seconds(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigError(
            f"fault spec: {what} needs seconds, got {text!r}") from None


def parse_fault_entry(entry: str) -> Fault:
    """Parse one ``kind@start[+duration][:key=value...]`` entry."""
    entry = entry.strip()
    if not entry:
        raise ConfigError("fault spec: empty entry")
    head, _, params = entry.partition(":")
    kind, at, timing = head.partition("@")
    kind = kind.strip()
    if kind not in _KINDS:
        raise ConfigError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
    if not at:
        raise ConfigError(
            f"fault spec: {kind} needs a start time ('{kind}@SECONDS')")
    cls, key_map, required = _KINDS[kind]

    timing, plus, duration_text = timing.partition("+")
    kwargs: dict[str, typing.Any] = {
        "at_s": _parse_seconds(timing.strip(), f"{kind} start")}
    if plus:
        kwargs["duration_s"] = _parse_seconds(
            duration_text.strip(), f"{kind} duration")

    seen = set()
    if params:
        for pair in params.split(":"):
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ConfigError(
                    f"fault spec: expected key=value, got {pair.strip()!r}")
            kwarg = key_map.get(key)
            if kwarg is None:
                raise ConfigError(
                    f"fault spec: {kind} does not take {key!r}; "
                    f"accepted keys: {tuple(sorted(key_map)) or '(none)'}")
            if key in seen:
                raise ConfigError(f"fault spec: duplicate key {key!r}")
            seen.add(key)
            kwargs[kwarg] = _coerce(kwarg, value.strip())
    missing = [key for key in required if key not in seen]
    if missing:
        raise ConfigError(
            f"fault spec: {kind} needs {', '.join(repr(m) for m in missing)}")

    fault = cls(**kwargs)
    fault.validate()
    return fault


def parse_fault_spec(spec: str) -> list[Fault]:
    """Parse a full ``;``-separated fault specification string."""
    entries = [entry for entry in spec.split(";") if entry.strip()]
    if not entries:
        raise ConfigError(f"fault spec is empty: {spec!r}")
    return [parse_fault_entry(entry) for entry in entries]
