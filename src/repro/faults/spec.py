"""Parse compact fault specifications (the CLI's ``--faults`` flag).

Grammar (whitespace around separators is ignored)::

    spec     := entry (";" entry)*
    entry    := kind "@" start ["+" duration] (":" key "=" value)*
    start    := seconds (relative to the measured period)
    duration := seconds

Examples::

    cluster-outage@60+30:cluster=cluster-2:mode=blackhole
    replica-crash@10+40:service=api:cluster=cluster-1:index=2
    link-partition@30+20:src=cluster-1:dst=cluster-2
    link-degradation@30+60:src=cluster-1:dst=cluster-3:multiplier=5
    scrape-outage@40+25:mode=stall
    controller-pause@50+15
    controller-crash@20+30:replica=0
    cluster-outage@60+30:cluster=cluster-2 ; scrape-outage@90+10

Each kind maps onto the dataclass of the same name in
:mod:`repro.faults.faults`; keys map onto its remaining fields. One spec
string drives both substrates: the simulator's
:class:`~repro.faults.base.FaultInjector` and the live testbed's
:class:`~repro.live.chaos.LiveFaultInjector` consume the same parsed
fault list.

Every structural problem raises :class:`~repro.errors.FaultSpecError`
(a :class:`~repro.errors.ConfigError`) **at parse time**: unknown kinds
or keys, missing required keys, bad numbers, negative windows — and,
via :func:`validate_fault_spec`, target names that do not exist in the
topology and overlapping windows on the same target, both of which used
to surface only minutes into a run (or not at all).
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError, FaultSpecError
from repro.faults.base import Fault
from repro.faults.faults import (
    ClusterOutage,
    ControllerCrash,
    ControllerPause,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
    ReplicaRestart,
    ScrapeOutage,
)

# kind -> (fault class, {spec key -> constructor kwarg}, required keys)
_KINDS: dict[str, tuple[type, dict[str, str], tuple[str, ...]]] = {
    "replica-crash": (
        ReplicaCrash,
        {"service": "service", "cluster": "cluster",
         "index": "replica_index", "mode": "mode"},
        ("service", "cluster")),
    "replica-restart": (
        ReplicaRestart,
        {"service": "service", "cluster": "cluster",
         "index": "replica_index"},
        ("service", "cluster")),
    "cluster-outage": (
        ClusterOutage,
        {"cluster": "cluster", "mode": "mode", "service": "service"},
        ("cluster",)),
    "link-partition": (
        LinkPartition,
        {"src": "src", "dst": "dst", "symmetric": "symmetric"},
        ("src", "dst")),
    "link-degradation": (
        LinkDegradation,
        {"src": "src", "dst": "dst", "multiplier": "multiplier",
         "extra": "extra_delay_s", "symmetric": "symmetric"},
        ("src", "dst")),
    "scrape-outage": (ScrapeOutage, {"mode": "mode"}, ()),
    "controller-pause": (ControllerPause, {}, ()),
    "controller-crash": (ControllerCrash, {"replica": "replica_index"}, ()),
}

FAULT_KINDS = tuple(sorted(_KINDS))

_INT_KWARGS = ("replica_index",)
_FLOAT_KWARGS = ("multiplier", "extra_delay_s")
_BOOL_KWARGS = ("symmetric",)

# Constructor kwargs naming a cluster / a service, for topology checks.
_CLUSTER_KWARGS = ("cluster", "src", "dst")
_SERVICE_KWARGS = ("service",)


def _coerce(kwarg: str, value: str):
    try:
        if kwarg in _INT_KWARGS:
            return int(value)
        if kwarg in _FLOAT_KWARGS:
            return float(value)
    except ValueError:
        raise FaultSpecError(
            f"fault spec: {kwarg} needs a number, got {value!r}") from None
    if kwarg in _BOOL_KWARGS:
        lowered = value.lower()
        if lowered in ("true", "yes", "1"):
            return True
        if lowered in ("false", "no", "0"):
            return False
        raise FaultSpecError(
            f"fault spec: {kwarg} needs a boolean, got {value!r}")
    return value


def _parse_seconds(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise FaultSpecError(
            f"fault spec: {what} needs seconds, got {text!r}") from None


def parse_fault_entry(entry: str) -> Fault:
    """Parse one ``kind@start[+duration][:key=value...]`` entry."""
    entry = entry.strip()
    if not entry:
        raise FaultSpecError("fault spec: empty entry")
    head, _, params = entry.partition(":")
    kind, at, timing = head.partition("@")
    kind = kind.strip()
    if kind not in _KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
    if not at:
        raise FaultSpecError(
            f"fault spec: {kind} needs a start time ('{kind}@SECONDS')")
    cls, key_map, required = _KINDS[kind]

    timing, plus, duration_text = timing.partition("+")
    kwargs: dict[str, typing.Any] = {
        "at_s": _parse_seconds(timing.strip(), f"{kind} start")}
    if plus:
        kwargs["duration_s"] = _parse_seconds(
            duration_text.strip(), f"{kind} duration")

    seen = set()
    if params:
        for pair in params.split(":"):
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq or not key:
                raise FaultSpecError(
                    f"fault spec: expected key=value, got {pair.strip()!r}")
            kwarg = key_map.get(key)
            if kwarg is None:
                raise FaultSpecError(
                    f"fault spec: {kind} does not take {key!r}; "
                    f"accepted keys: {tuple(sorted(key_map)) or '(none)'}")
            if key in seen:
                raise FaultSpecError(f"fault spec: duplicate key {key!r}")
            seen.add(key)
            kwargs[kwarg] = _coerce(kwarg, value.strip())
    missing = [key for key in required if key not in seen]
    if missing:
        raise FaultSpecError(
            f"fault spec: {kind} needs {', '.join(repr(m) for m in missing)}")

    try:
        fault = cls(**kwargs)
        fault.validate()
    except FaultSpecError:
        raise
    except ConfigError as exc:
        # Field-level validation (bad modes, negative indices, negative
        # windows) surfaces as a spec error when it comes from a spec.
        raise FaultSpecError(f"fault spec: {entry}: {exc}") from exc
    return fault


def validate_fault_spec(faults: typing.Sequence[Fault],
                        clusters: typing.Collection[str] | None = None,
                        services: typing.Collection[str] | None = None,
                        ) -> None:
    """Reject schedules that cannot run as written.

    Args:
        faults: the parsed (or directly constructed) fault list.
        clusters: known cluster names; when given, any fault naming a
            cluster (``cluster``/``src``/``dst``) outside this set raises
            — a fault that targets nothing used to fail only mid-run.
        services: known service names, checked the same way.

    Raises:
        FaultSpecError: on an unknown target name, or when two faults of
            the same kind hit the same target with overlapping
            ``[start, start+duration)`` windows (the second apply or the
            first revert would clobber the other's state).
    """
    for fault in faults:
        fault.validate()
        if clusters is not None:
            for kwarg in _CLUSTER_KWARGS:
                name = getattr(fault, kwarg, None)
                if name is not None and name not in clusters:
                    raise FaultSpecError(
                        f"fault spec: {fault} names unknown cluster "
                        f"{name!r}; known clusters: "
                        f"{tuple(sorted(clusters))}")
        if services is not None:
            for kwarg in _SERVICE_KWARGS:
                name = getattr(fault, kwarg, None)
                if name is not None and name not in services:
                    raise FaultSpecError(
                        f"fault spec: {fault} names unknown service "
                        f"{name!r}; known services: "
                        f"{tuple(sorted(services))}")

    windows: dict[typing.Any, list[tuple[float, float, Fault]]] = {}
    for fault in faults:
        start, end = fault.window()
        if start >= end:  # instantaneous events cannot overlap anything
            continue
        for target in fault.targets():
            windows.setdefault(target, []).append((start, end, fault))
    for target, entries in windows.items():
        entries.sort(key=lambda item: item[:2])
        for (_s1, end1, first), (s2, _e2, second) in zip(entries,
                                                         entries[1:]):
            if s2 < end1:
                raise FaultSpecError(
                    f"fault spec: overlapping windows on the same target "
                    f"{target}: {first} is still active at {s2} when "
                    f"{second} starts")


def parse_fault_spec(spec: str,
                     clusters: typing.Collection[str] | None = None,
                     services: typing.Collection[str] | None = None,
                     ) -> list[Fault]:
    """Parse a full ``;``-separated fault specification string.

    With ``clusters``/``services`` given, target names are checked
    against the topology and overlapping same-target windows are
    rejected — see :func:`validate_fault_spec` (always run; the name
    checks are skipped when the topology is unknown).
    """
    entries = [entry for entry in spec.split(";") if entry.strip()]
    if not entries:
        raise FaultSpecError(f"fault spec is empty: {spec!r}")
    faults = [parse_fault_entry(entry) for entry in entries]
    validate_fault_spec(faults, clusters=clusters, services=services)
    return faults


def fault_to_dict(fault: Fault) -> dict:
    """Serialise a fault as ``{"kind": ..., <fields>}`` (trace JSON)."""
    import dataclasses

    for kind, (cls, _key_map, _required) in _KINDS.items():
        if type(fault) is cls:
            doc = dataclasses.asdict(fault)
            doc["kind"] = kind
            return doc
    raise ConfigError(
        f"cannot serialise unregistered fault type: "
        f"{type(fault).__name__}")


def fault_from_dict(data: dict) -> Fault:
    """Rebuild a fault from :func:`fault_to_dict` output."""
    fields = dict(data)
    kind = fields.pop("kind", None)
    if kind not in _KINDS:
        raise ConfigError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
    cls = _KINDS[kind][0]
    try:
        fault = cls(**fields)
    except TypeError as error:
        raise ConfigError(f"bad fields for fault {kind!r}: {error}") from None
    fault.validate()
    return fault
