"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """An inconsistency was detected inside the discrete-event simulator."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class FaultSpecError(ConfigError):
    """A fault specification is malformed or internally inconsistent.

    Raised at parse/validation time — before anything is wired up — so a
    bad ``--faults`` string fails the run immediately instead of
    erroring (or silently no-op'ing) minutes into a live experiment.
    """


class AutoscaleSpecError(ConfigError):
    """An autoscale policy specification is malformed or inconsistent.

    Raised at parse/validation time — before anything is wired up — so a
    bad ``--autoscale`` string fails the run immediately, mirroring
    :class:`FaultSpecError` for ``--faults``.
    """


class MeshError(ReproError):
    """The service-mesh model was used incorrectly (unknown service, etc.)."""


class TelemetryError(ReproError):
    """A telemetry query could not be answered."""


class Interrupted(ReproError):
    """Raised inside a simulation process that has been interrupted.

    Attributes:
        cause: the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause
