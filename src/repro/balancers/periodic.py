"""Shared glue for balancers built as controller + TrafficSplit pairs.

L3 and C3 each hand-wire the same three-piece sandwich: a TrafficSplit
the data plane samples, a controller with a periodic ``reconcile`` that
writes weights into it, and a simulator process running the reconcile
loop. The new weight solvers (KnapsackLB, the service-rate model) repeat
that shape, so this module factors it once: a controller only has to
provide ``reconcile(now)``/``pause()``/``resume()`` plus the
``last_weights``/``reconcile_count`` introspection fields, and
:class:`PeriodicSplitBalancer` supplies the split, the pick path and the
loop lifecycle. (L3 and C3 keep their original wiring untouched — they
are pinned by the golden determinism digest.)
"""

from __future__ import annotations

from repro.balancers.base import Balancer
from repro.errors import Interrupted
from repro.mesh.traffic_split import TrafficSplit
from repro.sim.engine import Simulator


class PeriodicSplitBalancer(Balancer):
    """A TrafficSplit kept fresh by a periodic reconcile controller.

    Subclasses construct their controller in ``__init__`` via
    ``make_controller(split)`` and inherit pick/start/stop; the
    controller's ``reconcile_interval_s`` config field sets the loop
    cadence.
    """

    #: short name used for the simulator process label ("knapsack/api").
    loop_label = "periodic"

    def __init__(self, sim: Simulator, service: str, backend_names,
                 make_controller, propagation_delay_s: float = 0.5):
        self.sim = sim
        self.split = TrafficSplit(
            sim, service, backend_names,
            propagation_delay_s=propagation_delay_s)
        self.controller = make_controller(self.split)
        self._loop = None

    def pick(self, rng, now: float) -> str:
        return self.split.pick(rng)

    def _run(self, sim):
        interval = self.controller.config.reconcile_interval_s
        try:
            while True:
                yield sim.timeout(interval)
                if not self.controller.paused:
                    self.controller.reconcile(sim.now)
        except Interrupted:
            return

    def start(self, sim) -> None:
        if self._loop is not None and self._loop.is_alive:
            return
        self._loop = sim.spawn(
            self._run(sim), name=f"{self.loop_label}/{self.split.service}")

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt()
        self._loop = None
