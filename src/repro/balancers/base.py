"""The balancer interface the client proxy programs against.

Two families implement it:

* per-request balancers decide in :meth:`pick` (round-robin, P2C);
* weight-based balancers (L3, C3-adapted, static) keep a TrafficSplit
  up to date from a periodic control loop and :meth:`pick` just samples it.

The optional hooks let in-proxy balancers (P2C) maintain their own local
view without the Prometheus detour the controller-based algorithms take.
"""

from __future__ import annotations

import abc

from repro.errors import ConfigError


def validate_backend_pool(backend_names, algorithm: str) -> list[str]:
    """Validate a backend pool the same way for every balancer.

    Every balancer accepts the degenerate one-backend pool (it must
    return that backend without attempting to sample two distinct ones)
    and rejects the two states no pick can recover from: an empty pool
    and duplicate names (duplicates silently skew every sampling scheme).
    """
    names = list(backend_names)
    if not names:
        raise ConfigError(f"{algorithm} needs at least one backend")
    if len(set(names)) != len(names):
        raise ConfigError(f"{algorithm}: duplicate backends: {names}")
    return names


class Balancer(abc.ABC):
    """Chooses the backend for each outgoing request."""

    @abc.abstractmethod
    def pick(self, rng, now: float) -> str:
        """Return the backend name for the next request."""

    def on_request_sent(self, backend: str, now: float) -> None:
        """Hook: a request was dispatched to ``backend``."""

    def on_response(self, backend: str, now: float, latency_s: float,
                    success: bool) -> None:
        """Hook: a response for ``backend`` completed."""

    def start(self, sim) -> None:
        """Hook: start any background control loops on ``sim``."""

    def stop(self) -> None:
        """Hook: stop background control loops."""
