"""L3 as a mesh balancer: controller + TrafficSplit glued together.

This is the integration the paper's Fig. 5 shows: the L3 operator watches
Prometheus (our :class:`~repro.telemetry.query.PromMetricsSource`), runs
the weighting and rate-control algorithms every 5 s, and writes the result
into the service's TrafficSplit, which the data-plane proxies sample on
every request.
"""

from __future__ import annotations

from repro.balancers.base import Balancer
from repro.core.config import L3Config
from repro.core.controller import L3Controller
from repro.mesh.traffic_split import TrafficSplit
from repro.sim.engine import Simulator


class L3Balancer(Balancer):
    """The paper's system: L3 controller driving a TrafficSplit."""

    def __init__(self, sim: Simulator, service: str, backend_names,
                 metrics_source, config: L3Config | None = None,
                 propagation_delay_s: float = 0.5):
        self.sim = sim
        self.config = config or L3Config()
        self.split = TrafficSplit(
            sim, service, backend_names,
            propagation_delay_s=propagation_delay_s)
        self.controller = L3Controller(
            list(backend_names), metrics_source, self.split,
            config=self.config, start_time=sim.now)
        self._loop = None

    def pick(self, rng, now: float) -> str:
        return self.split.pick(rng)

    def start(self, sim) -> None:
        if self._loop is not None and self._loop.is_alive:
            return
        self._loop = sim.spawn(
            self.controller.run(sim), name=f"l3/{self.split.service}")

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt()
        self._loop = None
