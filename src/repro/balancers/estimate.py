"""Windowed latency-vs-load curve estimation shared by the weight solvers.

KnapsackLB calibrates a per-backend latency-versus-throughput curve from
passive observations and solves an allocation problem over the curves;
the workload-dependent service-rate model does the same with service
times. Both need the same primitive: a small rolling window of
``(offered RPS, observed cost)`` points and a robust straight-line fit
through them. A line is deliberately the whole model — with one client's
vantage point and a handful of scrape windows per curve there is not
enough signal to fit anything richer, and a clamped non-negative slope
already captures the part that matters for allocation: *how fast does
this backend degrade as I push load at it?*
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError


class LoadCostModel:
    """Rolling linear fit of an observed cost against offered RPS.

    ``observe(rps, cost)`` appends one windowed measurement;
    ``predict(rps)`` evaluates the least-squares line through the window,
    with two guard rails that keep the solvers sane on degenerate data:

    * the slope is clamped to ``>= 0`` (a backend never *speeds up* under
      added load; a negative raw slope is noise),
    * the intercept is clamped to ``>= min_cost`` (costs are positive).

    With fewer than two points — or a window with no load spread — the
    fit degrades to the flat line through the mean observed cost (or the
    ``default_cost`` prior before any observation at all).
    """

    def __init__(self, default_cost: float, max_points: int = 24,
                 min_cost: float = 1e-4):
        if default_cost <= 0:
            raise ConfigError(f"default_cost must be positive: {default_cost}")
        if max_points < 2:
            raise ConfigError(f"max_points must be >= 2: {max_points}")
        self.default_cost = default_cost
        self.min_cost = min_cost
        self._points: deque[tuple[float, float]] = deque(maxlen=max_points)

    def observe(self, rps: float, cost: float) -> None:
        """Record one (offered load, observed cost) measurement."""
        self._points.append((max(rps, 0.0), max(cost, 0.0)))

    @property
    def observations(self) -> int:
        return len(self._points)

    def fit(self) -> tuple[float, float]:
        """The fitted ``(base_cost, cost_per_rps)`` line."""
        if not self._points:
            return self.default_cost, 0.0
        n = len(self._points)
        mean_x = sum(x for x, _ in self._points) / n
        mean_y = sum(y for _, y in self._points) / n
        var = sum((x - mean_x) ** 2 for x, _ in self._points)
        if n < 2 or var <= 1e-9:
            return max(mean_y, self.min_cost), 0.0
        cov = sum((x - mean_x) * (y - mean_y) for x, y in self._points)
        slope = max(cov / var, 0.0)
        base = max(mean_y - slope * mean_x, self.min_cost)
        return base, slope

    def predict(self, rps: float) -> float:
        """Predicted cost at ``rps`` offered load."""
        base, slope = self.fit()
        return base + slope * max(rps, 0.0)
