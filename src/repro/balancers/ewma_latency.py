"""Plain EWMA-latency greedy pick — the filter without the P2C sampling.

The simplest latency-aware client-side policy: keep a per-backend EWMA of
observed response times and send each request to the current minimum,
with a small epsilon of uniform exploration. It isolates what the EWMA
filter alone buys (versus P2C's two-sample cost comparison and versus
the controller-based weight solvers): greedy argmin herds onto one
backend, and the backends it starves keep stale estimates that only the
exploration traffic refreshes — the classic explore/exploit failure mode
this balancer exists to demonstrate in the tournament.
"""

from __future__ import annotations

from repro.balancers.base import Balancer, validate_backend_pool
from repro.core.ewma import Ewma, half_life_to_beta


class EwmaLatencyBalancer(Balancer):
    """Greedy lowest-EWMA-latency pick with epsilon exploration."""

    def __init__(self, backend_names, default_latency_s: float = 1.0,
                 half_life_s: float = 5.0, explore_prob: float = 0.10,
                 start_time: float = 0.0):
        """Args:
            backend_names: the pool.
            default_latency_s: optimistic prior before any observation
                (matches P2C's prior so cold-start behavior is comparable).
            half_life_s: EWMA half-life of the latency filter.
            explore_prob: fraction of picks routed uniformly at random —
                the only thing keeping starved backends' estimates alive.
            start_time: simulation time at construction.
        """
        self._names = validate_backend_pool(backend_names, "ewma")
        beta = half_life_to_beta(half_life_s)
        self.explore_prob = explore_prob
        self._latency = {
            name: Ewma(default_latency_s, beta, start_time)
            for name in self._names
        }

    def pick(self, rng, now: float) -> str:
        if len(self._names) == 1:
            return self._names[0]
        if rng.random() < self.explore_prob:
            return self._names[rng.randrange(len(self._names))]
        # min() is stable: equal estimates resolve to pool order, which
        # keeps runs deterministic under a fixed seed.
        return min(self._names, key=lambda n: self._latency[n].value)

    def on_response(self, backend: str, now: float, latency_s: float,
                    success: bool) -> None:
        self._latency[backend].observe(latency_s, now)
