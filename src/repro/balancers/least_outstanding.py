"""Least-outstanding-requests — the classical client-side queue heuristic.

The oldest adaptive policy in the client-side family (AWS ALB's "least
outstanding requests", Envoy's LEAST_REQUEST with full scan): every
request goes to the backend with the fewest requests currently in
flight, ties broken uniformly at random. In-flight count is a free,
perfectly fresh congestion signal — it needs no scrape pipeline and no
latency model — but it is *latency-blind*: a fast backend and a slow
backend with equal queue depth look identical, so under cross-cluster
delay skew it keeps feeding the far cluster (the failure mode the
tournament's degraded-backend cell makes visible).
"""

from __future__ import annotations

from repro.balancers.base import Balancer, validate_backend_pool


class LeastOutstandingBalancer(Balancer):
    """Pick the backend with the fewest in-flight requests."""

    def __init__(self, backend_names):
        self._names = validate_backend_pool(backend_names, "least-outstanding")
        self._inflight = {name: 0 for name in self._names}

    def pick(self, rng, now: float) -> str:
        if len(self._names) == 1:
            return self._names[0]
        lowest = min(self._inflight.values())
        tied = [n for n in self._names if self._inflight[n] == lowest]
        if len(tied) == 1:
            return tied[0]
        return tied[rng.randrange(len(tied))]

    def on_request_sent(self, backend: str, now: float) -> None:
        self._inflight[backend] += 1

    def on_response(self, backend: str, now: float, latency_s: float,
                    success: bool) -> None:
        self._inflight[backend] = max(self._inflight[backend] - 1, 0)
