"""Balancer registry: one table names every algorithm the harness races.

Algorithms register themselves with the :func:`register_balancer`
decorator; :data:`BALANCER_NAMES`, the CLI's ``--algorithm`` choices and
the tournament's enumeration all derive from that single table, so
adding an algorithm is exactly one decorated builder function here (plus
its implementation module). Registration order is presentation order —
the paper's set first, then the extensions, then the retrieved-work zoo
— and it is frozen into :data:`BALANCER_NAMES` at import time.

A builder receives the full wiring context (simulator, service,
backends, metrics source, config knobs) and returns a ready
:class:`~repro.balancers.base.Balancer`; per-request algorithms simply
ignore the parts they do not need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.balancers.c3 import C3Balancer
from repro.balancers.ewma_latency import EwmaLatencyBalancer
from repro.balancers.failover import FailoverBalancer
from repro.balancers.gradient import GradientDescentBalancer
from repro.balancers.knapsack import KnapsackLbBalancer
from repro.balancers.l3 import L3Balancer
from repro.balancers.least_outstanding import LeastOutstandingBalancer
from repro.balancers.p2c import P2cPeakEwmaBalancer
from repro.balancers.round_robin import RoundRobinBalancer
from repro.balancers.service_rate import ServiceRateAwareBalancer
from repro.core.config import L3Config
from repro.errors import ConfigError
from repro.mesh.cluster import split_backend_name


@dataclass(frozen=True)
class BalancerSpec:
    """One registry row: how to build an algorithm, and what it is."""

    name: str
    builder: object
    summary: str
    #: True when the algorithm runs a periodic reconcile-loop controller
    #: (exposed as ``balancer.controller``) — what ControllerPause
    #: faults target and what the coordinator introspects weights from.
    controller: bool = False


_REGISTRY: dict[str, BalancerSpec] = {}


def register_balancer(name: str, *, summary: str, controller: bool = False):
    """Class decorator-style registration of one balancer builder."""
    def decorate(builder):
        if name in _REGISTRY:
            raise ConfigError(f"balancer {name!r} registered twice")
        _REGISTRY[name] = BalancerSpec(
            name=name, builder=builder, summary=summary,
            controller=controller)
        return builder
    return decorate


@register_balancer(
    "round-robin",
    summary="cycle through backends in fixed order (paper baseline)")
def _build_round_robin(ctx):
    return RoundRobinBalancer(ctx.backend_names)


@register_balancer(
    "c3", controller=True,
    summary="cubic queue-aware scoring, adapted (paper comparator)")
def _build_c3(ctx):
    return C3Balancer(ctx.sim, ctx.service, ctx.backend_names,
                      ctx.metrics_source,
                      propagation_delay_s=ctx.propagation_delay_s)


@register_balancer(
    "l3", controller=True,
    summary="the paper's latency-aware controller (EWMA filter)")
def _build_l3(ctx):
    config = replace(ctx.l3_config or L3Config(), use_peak_ewma=False)
    return L3Balancer(ctx.sim, ctx.service, ctx.backend_names,
                      ctx.metrics_source, config=config,
                      propagation_delay_s=ctx.propagation_delay_s)


@register_balancer(
    "l3-peak", controller=True,
    summary="L3 with the PeakEWMA latency filter (paper §5.2.2)")
def _build_l3_peak(ctx):
    config = replace(ctx.l3_config or L3Config(), use_peak_ewma=True)
    return L3Balancer(ctx.sim, ctx.service, ctx.backend_names,
                      ctx.metrics_source, config=config,
                      propagation_delay_s=ctx.propagation_delay_s)


@register_balancer(
    "p2c",
    summary="power-of-two-choices + PeakEWMA cost (Linkerd default)")
def _build_p2c(ctx):
    return P2cPeakEwmaBalancer(ctx.backend_names, start_time=ctx.sim.now)


@register_balancer(
    "failover",
    summary="locality failover on health checks (related work §6)")
def _build_failover(ctx):
    ordered = sorted(
        ctx.backend_names,
        key=lambda n: (split_backend_name(n)[1] != ctx.local_cluster, n))
    return FailoverBalancer(ordered)


@register_balancer(
    "least-outstanding",
    summary="fewest in-flight requests wins (classical client-side)")
def _build_least_outstanding(ctx):
    return LeastOutstandingBalancer(ctx.backend_names)


@register_balancer(
    "ewma",
    summary="greedy lowest-EWMA-latency pick with epsilon exploration")
def _build_ewma(ctx):
    return EwmaLatencyBalancer(ctx.backend_names, start_time=ctx.sim.now)


@register_balancer(
    "knapsack", controller=True,
    summary="KnapsackLB: greedy knapsack over calibrated latency curves")
def _build_knapsack(ctx):
    return KnapsackLbBalancer(ctx.sim, ctx.service, ctx.backend_names,
                              ctx.metrics_source,
                              propagation_delay_s=ctx.propagation_delay_s)


@register_balancer(
    "gradient",
    summary="distributed projected-gradient split on observed latency")
def _build_gradient(ctx):
    return GradientDescentBalancer(ctx.backend_names)


@register_balancer(
    "service-rate", controller=True,
    summary="workload-dependent service-rate estimation + fixed point")
def _build_service_rate(ctx):
    return ServiceRateAwareBalancer(ctx.sim, ctx.service, ctx.backend_names,
                                    ctx.metrics_source,
                                    propagation_delay_s=ctx.propagation_delay_s)


#: Every registered algorithm, in registration (= presentation) order.
BALANCER_NAMES = tuple(_REGISTRY)


@dataclass(frozen=True)
class _BuildContext:
    """The wiring a builder may draw from (builders ignore the rest)."""

    sim: object
    service: str
    backend_names: tuple
    metrics_source: object
    l3_config: L3Config | None
    propagation_delay_s: float
    local_cluster: str | None


def balancer_specs() -> tuple[BalancerSpec, ...]:
    """The registry rows, in registration order."""
    return tuple(_REGISTRY.values())


def controller_balancer_names() -> tuple[str, ...]:
    """Algorithms that run a reconcile-loop controller."""
    return tuple(spec.name for spec in _REGISTRY.values() if spec.controller)


def make_balancer(name: str, sim, service: str, backend_names,
                  metrics_source, l3_config: L3Config | None = None,
                  propagation_delay_s: float = 0.5,
                  local_cluster: str | None = None):
    """Build the named balancer wired for ``service``.

    Args:
        name: one of :data:`BALANCER_NAMES`.
        sim: the simulator (needed by controller-based balancers).
        service: destination service (TrafficSplit identity).
        backend_names: the service's backend names.
        metrics_source: the windowed metrics source (ignored by
            per-request balancers).
        l3_config: L3 tunables; for ``"l3-peak"`` the PeakEWMA flag is
            forced on (and off for plain ``"l3"``).
        propagation_delay_s: control-plane weight push latency.
        local_cluster: the caller's cluster; required by ``"failover"``
            (the local backend is the top preference).
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown balancer {name!r}; expected one of {BALANCER_NAMES}")
    ctx = _BuildContext(
        sim=sim, service=service, backend_names=tuple(backend_names),
        metrics_source=metrics_source, l3_config=l3_config,
        propagation_delay_s=propagation_delay_s,
        local_cluster=local_cluster)
    return spec.builder(ctx)
