"""Balancer construction by name — what the benchmark harness uses."""

from __future__ import annotations

from dataclasses import replace

from repro.balancers.c3 import C3Balancer
from repro.balancers.failover import FailoverBalancer
from repro.balancers.l3 import L3Balancer
from repro.balancers.p2c import P2cPeakEwmaBalancer
from repro.balancers.round_robin import RoundRobinBalancer
from repro.core.config import L3Config
from repro.errors import ConfigError
from repro.mesh.cluster import split_backend_name

# Algorithm names accepted by the harness; "l3-peak" is L3 with the
# PeakEWMA latency filter (§5.2.2's comparison); "p2c" and "failover" are
# extensions (Linkerd's in-proxy default and the related-work locality
# failover, respectively).
BALANCER_NAMES = ("round-robin", "c3", "l3", "l3-peak", "p2c", "failover")


def make_balancer(name: str, sim, service: str, backend_names,
                  metrics_source, l3_config: L3Config | None = None,
                  propagation_delay_s: float = 0.5,
                  local_cluster: str | None = None):
    """Build the named balancer wired for ``service``.

    Args:
        name: one of :data:`BALANCER_NAMES`.
        sim: the simulator (needed by controller-based balancers).
        service: destination service (TrafficSplit identity).
        backend_names: the service's backend names.
        metrics_source: the windowed metrics source (ignored by
            per-request balancers).
        l3_config: L3 tunables; for ``"l3-peak"`` the PeakEWMA flag is
            forced on (and off for plain ``"l3"``).
        propagation_delay_s: control-plane weight push latency.
        local_cluster: the caller's cluster; required by ``"failover"``
            (the local backend is the top preference).
    """
    if name == "round-robin":
        return RoundRobinBalancer(backend_names)
    if name == "p2c":
        return P2cPeakEwmaBalancer(backend_names, start_time=sim.now)
    if name == "failover":
        ordered = sorted(
            backend_names,
            key=lambda n: (split_backend_name(n)[1] != local_cluster, n))
        return FailoverBalancer(ordered)
    if name == "c3":
        return C3Balancer(sim, service, backend_names, metrics_source,
                          propagation_delay_s=propagation_delay_s)
    if name in ("l3", "l3-peak"):
        config = l3_config or L3Config()
        config = replace(config, use_peak_ewma=(name == "l3-peak"))
        return L3Balancer(sim, service, backend_names, metrics_source,
                          config=config,
                          propagation_delay_s=propagation_delay_s)
    raise ConfigError(
        f"unknown balancer {name!r}; expected one of {BALANCER_NAMES}")
