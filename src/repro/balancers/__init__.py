"""Load-balancing algorithms: L3, the paper's comparators, and extensions."""

from repro.balancers.base import Balancer
from repro.balancers.c3 import C3Balancer, C3Config
from repro.balancers.failover import FailoverBalancer
from repro.balancers.l3 import L3Balancer
from repro.balancers.p2c import P2cPeakEwmaBalancer
from repro.balancers.round_robin import RoundRobinBalancer
from repro.balancers.static_weights import StaticWeightBalancer
from repro.balancers.factory import BALANCER_NAMES, make_balancer

__all__ = [
    "BALANCER_NAMES",
    "Balancer",
    "C3Balancer",
    "C3Config",
    "FailoverBalancer",
    "L3Balancer",
    "P2cPeakEwmaBalancer",
    "RoundRobinBalancer",
    "StaticWeightBalancer",
    "make_balancer",
]
