"""Load-balancing algorithms: L3, the paper's comparators, and the zoo.

Beyond the paper's own comparison set (round-robin, C3, L3 ± PeakEWMA)
the package carries the retrieved-work zoo the tournament harness races:
KnapsackLB's calibrated-curve knapsack solve, the distributed
gradient-descent split, the workload-dependent service-rate solver, and
the classical client-side family (P2C+PeakEWMA, least-outstanding,
greedy EWMA-latency, locality failover). Every algorithm registers in
:mod:`repro.balancers.factory`; ``BALANCER_NAMES`` is the one table.
"""

from repro.balancers.base import Balancer, validate_backend_pool
from repro.balancers.c3 import C3Balancer, C3Config
from repro.balancers.estimate import LoadCostModel
from repro.balancers.ewma_latency import EwmaLatencyBalancer
from repro.balancers.failover import FailoverBalancer
from repro.balancers.gradient import (
    GradientConfig,
    GradientDescentBalancer,
    project_to_floored_simplex,
)
from repro.balancers.knapsack import (
    KnapsackConfig,
    KnapsackLbBalancer,
    greedy_allocation,
)
from repro.balancers.l3 import L3Balancer
from repro.balancers.least_outstanding import LeastOutstandingBalancer
from repro.balancers.p2c import P2cPeakEwmaBalancer
from repro.balancers.periodic import PeriodicSplitBalancer
from repro.balancers.round_robin import RoundRobinBalancer
from repro.balancers.service_rate import (
    ServiceRateAwareBalancer,
    ServiceRateConfig,
    solve_rate_shares,
)
from repro.balancers.static_weights import StaticWeightBalancer
from repro.balancers.factory import (
    BALANCER_NAMES,
    BalancerSpec,
    balancer_specs,
    controller_balancer_names,
    make_balancer,
    register_balancer,
)

__all__ = [
    "BALANCER_NAMES",
    "Balancer",
    "BalancerSpec",
    "C3Balancer",
    "C3Config",
    "EwmaLatencyBalancer",
    "FailoverBalancer",
    "GradientConfig",
    "GradientDescentBalancer",
    "KnapsackConfig",
    "KnapsackLbBalancer",
    "L3Balancer",
    "LeastOutstandingBalancer",
    "LoadCostModel",
    "P2cPeakEwmaBalancer",
    "PeriodicSplitBalancer",
    "RoundRobinBalancer",
    "ServiceRateAwareBalancer",
    "ServiceRateConfig",
    "StaticWeightBalancer",
    "balancer_specs",
    "controller_balancer_names",
    "greedy_allocation",
    "make_balancer",
    "project_to_floored_simplex",
    "register_balancer",
    "solve_rate_shares",
    "validate_backend_pool",
]
