"""Adaptation of C3 (Suresh et al., NSDI '15) to the service-mesh setting.

C3 ranks replicas of a data store with a cubic queue-aware scoring
function and selects per request. The paper adapts it for comparison
(§5.1) with three deliberate changes, which we reproduce:

* decisions operate on the **aggregated** traffic distribution (a
  TrafficSplit updated from windowed metrics), not per request;
* **no success-rate optimisation** — C3 targets data stores where request
  failure is not the dominant concern;
* **no backpressure/rate-limiting backlog queue** — microservices in a
  mesh lack the capacity self-awareness C3's rate control assumes.

The replica score keeps C3's structure: for backend ``b`` with filtered
response time ``R_b`` and filtered queue estimate ``q_b``::

    psi_b = R_b - T_b + (1 + q_b)^3 * T_b

where ``T_b = R_b / (q_b + 1)`` approximates the per-request service time
from aggregated metrics (FIFO intuition: response time is roughly
(queue+1) × service time). Weights are proportional to ``1 / psi_b``. The
cubic term is what lets C3 back off sharply from queue build-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.balancers.base import Balancer
from repro.core.ewma import Ewma, half_life_to_beta
from repro.errors import ConfigError
from repro.mesh.traffic_split import TrafficSplit
from repro.sim.engine import Simulator

_MIN_SCORE = 1e-6


@dataclass(frozen=True)
class C3Config:
    """Tunables of the C3 adaptation (defaults match the L3 loop cadence)."""

    reconcile_interval_s: float = 5.0
    metrics_window_s: float = 10.0
    percentile: float = 0.99
    latency_half_life_s: float = 5.0
    queue_half_life_s: float = 5.0
    default_latency_s: float = 5.0
    weight_scale: float = 1000.0
    min_weight: float = 1.0
    # Divisor applied to the queue signal before cubing (exposed for the
    # ablation benches; 1.0 = the raw server-reported queue size).
    queue_divisor: float = 1.0
    # Which latency signal R-bar filters: the original C3 EWMAs raw
    # response times, i.e. the windowed *mean* here; tail-percentile
    # weighting is L3's contribution, not C3's.
    latency_signal: str = "mean"
    # Which queue signal q-bar filters: "server" = the server-reported
    # queue occupancy (the original C3's piggybacked feedback channel);
    # "inflight" = the client proxy's in-flight count (includes WAN
    # transit, so it doubles as a latency proxy — NOT what C3 measures,
    # kept for the ablation benches).
    queue_signal: str = "server"

    def __post_init__(self):
        for name in ("reconcile_interval_s", "metrics_window_s",
                     "latency_half_life_s", "queue_half_life_s",
                     "default_latency_s", "weight_scale", "queue_divisor"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 < self.percentile < 1.0:
            raise ConfigError(f"percentile must be in (0, 1): {self.percentile}")
        if self.latency_signal not in ("mean", "percentile"):
            raise ConfigError(
                f"latency_signal must be 'mean' or 'percentile': "
                f"{self.latency_signal!r}")
        if self.queue_signal not in ("server", "inflight"):
            raise ConfigError(
                f"queue_signal must be 'server' or 'inflight': "
                f"{self.queue_signal!r}")


def c3_score(latency_s: float, queue: float) -> float:
    """The cubic replica score; lower is better."""
    latency_s = max(latency_s, _MIN_SCORE)
    queue = max(queue, 0.0)
    service_time = latency_s / (queue + 1.0)
    q_hat = 1.0 + queue
    return max(latency_s - service_time + q_hat ** 3 * service_time,
               _MIN_SCORE)


class _C3BackendState:
    def __init__(self, config: C3Config, now: float):
        self.latency = Ewma(config.default_latency_s,
                            half_life_to_beta(config.latency_half_life_s), now)
        self.queue = Ewma(0.0, half_life_to_beta(config.queue_half_life_s), now)


class C3Controller:
    """Periodic reconcile loop computing C3 weights from windowed metrics."""

    def __init__(self, backend_names, metrics_source, weight_sink,
                 config: C3Config | None = None, start_time: float = 0.0):
        if not backend_names:
            raise ConfigError("C3 needs at least one backend")
        self.config = config or C3Config()
        self.metrics_source = metrics_source
        self.weight_sink = weight_sink
        self.backends = {
            name: _C3BackendState(self.config, start_time)
            for name in backend_names
        }
        self.last_weights: dict[str, int] = {}
        self.reconcile_count = 0
        # Pause support (fault injection), mirroring L3Controller.
        self.paused = False

    def pause(self) -> None:
        """Suspend the reconcile loop (fault injection: stalled operator)."""
        self.paused = True

    def resume(self) -> None:
        """Resume a paused reconcile loop."""
        self.paused = False

    def reconcile(self, now: float) -> dict[str, int]:
        """One metrics → cubic scores → weights cycle (pushed to the sink)."""
        samples = self.metrics_source.collect(
            list(self.backends), now, self.config.metrics_window_s,
            self.config.percentile)
        weights: dict[str, int] = {}
        for name, state in self.backends.items():
            sample = samples.get(name)
            if sample is not None:
                if self.config.latency_signal == "mean":
                    latency = sample.mean_latency_s
                else:
                    latency = sample.latency_s
                if latency is not None:
                    state.latency.observe(latency, now)
                # C3 cubes the server-reported queue size (NSDI '15) — it
                # does not normalise by throughput (that normalisation is
                # one of L3's §3.1 design points).
                if self.config.queue_signal == "server":
                    queue = self._server_queue(name, now)
                else:
                    queue = sample.inflight
                state.queue.observe(queue / self.config.queue_divisor, now)
            score = c3_score(state.latency.value, state.queue.value)
            raw = self.config.weight_scale / score
            weights[name] = max(int(round(raw)), int(self.config.min_weight))
        self.weight_sink.set_weights(weights, now)
        self.last_weights = weights
        self.reconcile_count += 1
        return weights

    def _server_queue(self, name: str, now: float) -> float:
        """Server-reported queue size; 0 when the source cannot provide it."""
        reader = getattr(self.metrics_source, "server_queue", None)
        if reader is None:
            return 0.0
        return reader(name, now, self.config.metrics_window_s)

    def run(self, sim):
        """Generator process: reconcile on the configured interval."""
        from repro.errors import Interrupted

        try:
            while True:
                yield sim.timeout(self.config.reconcile_interval_s)
                if not self.paused:
                    self.reconcile(sim.now)
        except Interrupted:
            return


class C3Balancer(Balancer):
    """C3 adaptation driving a TrafficSplit — the paper's comparator."""

    def __init__(self, sim: Simulator, service: str, backend_names,
                 metrics_source, config: C3Config | None = None,
                 propagation_delay_s: float = 0.5):
        self.sim = sim
        self.config = config or C3Config()
        self.split = TrafficSplit(
            sim, service, backend_names,
            propagation_delay_s=propagation_delay_s)
        self.controller = C3Controller(
            list(backend_names), metrics_source, self.split,
            config=self.config, start_time=sim.now)
        self._loop = None

    def pick(self, rng, now: float) -> str:
        return self.split.pick(rng)

    def start(self, sim) -> None:
        if self._loop is not None and self._loop.is_alive:
            return
        self._loop = sim.spawn(
            self.controller.run(sim), name=f"c3/{self.split.service}")

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt()
        self._loop = None
