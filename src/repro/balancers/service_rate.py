"""Workload-dependent service-rate solve (Zhang et al., arXiv:2411.17103).

Classical queueing-based balancers assume each server has a fixed
service rate; the retrieved paper's point is that real service rates are
*workload-dependent* — the rate a backend achieves is a function of the
load routed to it — and that a balancer should estimate that function
and solve for the split that respects it. The adaptation here:

* **Estimation** — per backend, the windowed mean response time is
  deflated by queue depth (the same FIFO approximation C3 uses:
  ``service_time ~= latency / (inflight + 1)``) and regressed against
  observed RPS through a rolling
  :class:`~repro.balancers.estimate.LoadCostModel`, giving the
  workload-dependent curve ``s_b(r)``; the service rate is its
  reciprocal ``mu_b(r) = 1 / s_b(r)``.
* **Solve** — the target split routes traffic proportionally to
  *achieved* service rates, which depend on the split itself. The
  circular definition is resolved by fixed-point iteration: seed with
  the uniform split, then repeat ``r_b = total * x_b;
  x_b = mu_b(r_b) / sum mu`` a fixed number of rounds. With
  non-decreasing linear ``s_b`` the map is a contraction in practice and
  a handful of rounds settle to three digits. The solved split becomes
  TrafficSplit weights (floored at ``min_weight`` to keep probes alive).

Known failure mode (DESIGN §5g): the deflation step inherits C3's FIFO
approximation, so WAN transit time is wrongly counted as service time —
a *far* backend looks slower than it is, giving the solver an incidental
(and sometimes helpful) locality bias that is model error, not design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.balancers.estimate import LoadCostModel
from repro.balancers.periodic import PeriodicSplitBalancer
from repro.errors import ConfigError
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ServiceRateConfig:
    """Tunables of the service-rate-aware solver."""

    reconcile_interval_s: float = 5.0
    metrics_window_s: float = 10.0
    percentile: float = 0.99
    # Service-time prior before a backend's first observation.
    default_service_time_s: float = 0.05
    # Fixed-point rounds of the split <-> rate solve.
    solve_iterations: int = 8
    weight_scale: int = 100
    min_weight: int = 1
    history_points: int = 24

    def __post_init__(self):
        for name in ("reconcile_interval_s", "metrics_window_s",
                     "default_service_time_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 < self.percentile < 1.0:
            raise ConfigError(f"percentile must be in (0, 1): {self.percentile}")
        if self.solve_iterations < 1:
            raise ConfigError(
                f"solve_iterations must be >= 1: {self.solve_iterations}")
        if self.weight_scale < 1:
            raise ConfigError(f"weight_scale must be >= 1: {self.weight_scale}")
        if self.min_weight < 1:
            raise ConfigError(f"min_weight must be >= 1: {self.min_weight}")
        if self.history_points < 2:
            raise ConfigError(
                f"history_points must be >= 2: {self.history_points}")


def solve_rate_shares(models: dict[str, LoadCostModel], total_rps: float,
                      iterations: int) -> dict[str, float]:
    """Fixed-point split over workload-dependent service rates."""
    names = list(models)
    shares = {name: 1.0 / len(names) for name in names}
    for _ in range(iterations):
        rates = {}
        for name in names:
            service_time = max(
                models[name].predict(total_rps * shares[name]), 1e-6)
            rates[name] = 1.0 / service_time
        total_rate = sum(rates.values())
        shares = {name: rates[name] / total_rate for name in names}
    return shares


class ServiceRateController:
    """Periodic estimate-then-solve loop pushing service-rate weights."""

    def __init__(self, backend_names, metrics_source, weight_sink,
                 config: ServiceRateConfig | None = None):
        if not backend_names:
            raise ConfigError("service-rate needs at least one backend")
        self.config = config or ServiceRateConfig()
        self.metrics_source = metrics_source
        self.weight_sink = weight_sink
        self.models = {
            name: LoadCostModel(self.config.default_service_time_s,
                                max_points=self.config.history_points)
            for name in backend_names
        }
        self.last_weights: dict[str, int] = {}
        self.reconcile_count = 0
        self.paused = False

    def pause(self) -> None:
        """Suspend the reconcile loop (fault injection: stalled operator)."""
        self.paused = True

    def resume(self) -> None:
        """Resume a paused reconcile loop."""
        self.paused = False

    def reconcile(self, now: float) -> dict[str, int]:
        """One estimation + fixed-point-solve cycle (pushed to the sink)."""
        config = self.config
        samples = self.metrics_source.collect(
            list(self.models), now, config.metrics_window_s,
            config.percentile)
        total_rps = 0.0
        for name, model in self.models.items():
            sample = samples.get(name)
            if sample is None:
                continue
            if sample.mean_latency_s is not None:
                service_time = (sample.mean_latency_s
                                / (max(sample.inflight, 0.0) + 1.0))
                model.observe(sample.rps, service_time)
            total_rps += sample.rps
        shares = solve_rate_shares(
            self.models, total_rps, config.solve_iterations)
        weights = {
            name: max(int(round(share * config.weight_scale)),
                      config.min_weight)
            for name, share in shares.items()
        }
        self.weight_sink.set_weights(weights, now)
        self.last_weights = weights
        self.reconcile_count += 1
        return weights


class ServiceRateAwareBalancer(PeriodicSplitBalancer):
    """Workload-dependent service-rate solver driving a TrafficSplit."""

    loop_label = "service-rate"

    def __init__(self, sim: Simulator, service: str, backend_names,
                 metrics_source, config: ServiceRateConfig | None = None,
                 propagation_delay_s: float = 0.5):
        self.config = config or ServiceRateConfig()
        super().__init__(
            sim, service, backend_names,
            lambda split: ServiceRateController(
                list(backend_names), metrics_source, split,
                config=self.config),
            propagation_delay_s=propagation_delay_s)
