"""KnapsackLB-style allocation solve (Gandhi & Narayana, arXiv:2404.17783).

KnapsackLB reframes load balancing as an optimisation problem: calibrate
a latency-versus-throughput curve per backend from passive observations,
then solve for the traffic assignment that minimises aggregate latency —
the paper casts it as a knapsack/LP over the calibrated curves. This
adaptation keeps that two-phase structure on this repo's substrate:

* **Calibration** — every reconcile interval the windowed metrics source
  yields each backend's observed RPS and latency; the pair feeds a
  rolling :class:`~repro.balancers.estimate.LoadCostModel` (straight-line
  latency-vs-RPS fit, slope clamped non-negative).
* **Solve** — total observed demand is split into ``allocation_units``
  equal chunks and assigned greedily, each chunk to the backend with the
  lowest *predicted latency at its next chunk*. For convex
  (here: linear, non-negative-slope) curves this greedy marginal-cost
  rule produces the optimal fractional-knapsack allocation — a pure
  python solver, no LP dependency. Unit counts become TrafficSplit
  weights; a backend priced out of every chunk keeps ``min_weight`` so
  probe traffic continues refreshing its curve.

Known failure mode (documented in DESIGN §5g): the model is only as good
as the calibration window — a backend whose latency jumps for reasons
unrelated to load (a WAN path degradation) is modelled as a high *base*
latency only after the window turns over, so reaction is a couple of
reconcile intervals slower than L3's direct EWMA path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.balancers.estimate import LoadCostModel
from repro.balancers.periodic import PeriodicSplitBalancer
from repro.errors import ConfigError
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class KnapsackConfig:
    """Tunables of the KnapsackLB adaptation (cadence matches L3's loop)."""

    reconcile_interval_s: float = 5.0
    metrics_window_s: float = 10.0
    percentile: float = 0.99
    # Latency signal feeding the curve fit: "mean" is the stabler
    # calibration target; "percentile" optimises the tail directly.
    latency_signal: str = "mean"
    default_latency_s: float = 0.1
    # Granularity of the greedy solve: demand is split into this many
    # equal chunks (more = finer weights, linearly more solver work).
    allocation_units: int = 100
    # Floor weight so starved backends keep a trickle of probe traffic.
    min_weight: int = 1
    # Curve-fit window length, in reconcile observations per backend.
    history_points: int = 24

    def __post_init__(self):
        for name in ("reconcile_interval_s", "metrics_window_s",
                     "default_latency_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 < self.percentile < 1.0:
            raise ConfigError(f"percentile must be in (0, 1): {self.percentile}")
        if self.latency_signal not in ("mean", "percentile"):
            raise ConfigError(
                f"latency_signal must be 'mean' or 'percentile': "
                f"{self.latency_signal!r}")
        if self.allocation_units < 1:
            raise ConfigError(
                f"allocation_units must be >= 1: {self.allocation_units}")
        if self.min_weight < 1:
            raise ConfigError(f"min_weight must be >= 1: {self.min_weight}")
        if self.history_points < 2:
            raise ConfigError(
                f"history_points must be >= 2: {self.history_points}")


def greedy_allocation(models: dict[str, LoadCostModel], total_rps: float,
                      units: int) -> dict[str, int]:
    """Assign ``units`` equal demand chunks by lowest marginal latency.

    Returns the unit count per backend. Ties resolve to dict order
    (deterministic under a fixed seed). With ``total_rps == 0`` the
    chunks still get assigned — on the backends' *base* latencies — so a
    cold start produces a sensible latency-ranked split rather than
    all-zero weights.
    """
    chunk = max(total_rps, 0.0) / units
    assigned = {name: 0.0 for name in models}
    counts = {name: 0 for name in models}
    for _ in range(units):
        best = min(
            models,
            key=lambda name: models[name].predict(assigned[name] + chunk))
        assigned[best] += chunk
        counts[best] += 1
    return counts


class KnapsackLbController:
    """Periodic calibrate-then-solve loop pushing knapsack weights."""

    def __init__(self, backend_names, metrics_source, weight_sink,
                 config: KnapsackConfig | None = None):
        if not backend_names:
            raise ConfigError("knapsack needs at least one backend")
        self.config = config or KnapsackConfig()
        self.metrics_source = metrics_source
        self.weight_sink = weight_sink
        self.models = {
            name: LoadCostModel(self.config.default_latency_s,
                                max_points=self.config.history_points)
            for name in backend_names
        }
        self.last_weights: dict[str, int] = {}
        self.reconcile_count = 0
        self.paused = False

    def pause(self) -> None:
        """Suspend the reconcile loop (fault injection: stalled operator)."""
        self.paused = True

    def resume(self) -> None:
        """Resume a paused reconcile loop."""
        self.paused = False

    def reconcile(self, now: float) -> dict[str, int]:
        """One calibration + greedy-solve cycle (pushed to the sink)."""
        config = self.config
        samples = self.metrics_source.collect(
            list(self.models), now, config.metrics_window_s,
            config.percentile)
        total_rps = 0.0
        for name, model in self.models.items():
            sample = samples.get(name)
            if sample is None:
                continue
            if config.latency_signal == "mean":
                latency = sample.mean_latency_s
            else:
                latency = sample.latency_s
            if latency is not None:
                model.observe(sample.rps, latency)
            total_rps += sample.rps
        counts = greedy_allocation(
            self.models, total_rps, config.allocation_units)
        weights = {
            name: max(count, config.min_weight)
            for name, count in counts.items()
        }
        self.weight_sink.set_weights(weights, now)
        self.last_weights = weights
        self.reconcile_count += 1
        return weights


class KnapsackLbBalancer(PeriodicSplitBalancer):
    """KnapsackLB adaptation driving a TrafficSplit."""

    loop_label = "knapsack"

    def __init__(self, sim: Simulator, service: str, backend_names,
                 metrics_source, config: KnapsackConfig | None = None,
                 propagation_delay_s: float = 0.5):
        self.config = config or KnapsackConfig()
        super().__init__(
            sim, service, backend_names,
            lambda split: KnapsackLbController(
                list(backend_names), metrics_source, split,
                config=self.config),
            propagation_delay_s=propagation_delay_s)
