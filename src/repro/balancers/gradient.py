"""Distributed gradient-descent split (Balseiro/Mirrokni/Wydrowski,
arXiv:2504.10693).

The load-balancing scheme behind Google's PReq: every *client* owns a
probability split over the backends and improves it locally by gradient
steps on its own observed latency — no controller, no metrics pipeline,
no coordination between clients; the paper proves the decentralised
dynamics converge to the network-latency-aware optimum. The adaptation
here keeps the decentralised shape on this repo's substrate:

* between updates the balancer samples its current split per request and
  accumulates each backend's observed request cost (latency, plus a
  fixed penalty per failure so outages register as expensive);
* every ``update_interval_s`` the mean cost per backend becomes the
  stochastic gradient estimate and the split takes one step of
  multiplicative weights / mirror descent on the simplex::

      x_b  <-  x_b * (1 - eta * (g_b - g_mean) / g_mean)

  (``g_mean`` is the split-weighted mean cost, so the step is sum-zero:
  below-average backends grow, above-average shrink, scale-free in the
  latency unit);
* the result is projected back onto the simplex with an ``min_share``
  exploration floor — the floor traffic is what keeps cost estimates of
  down-weighted backends fresh (without it a backend priced out once
  could never be observed recovering).

Known failure mode (DESIGN §5g): one client's gradient is noisy at low
per-backend sample counts, so the step size trades convergence speed
against steady-state jitter; and convergence takes several update
periods where L3 re-weights in one reconcile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.balancers.base import Balancer, validate_backend_pool
from repro.errors import ConfigError, Interrupted
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class GradientConfig:
    """Tunables of the distributed gradient-descent balancer."""

    update_interval_s: float = 5.0
    # Step size eta of the multiplicative-weights update; the gradient
    # is normalised by the current mean cost, so eta is unitless.
    step_size: float = 0.3
    # Exploration floor: no backend's share drops below this.
    min_share: float = 0.02
    # Cost prior before a backend's first observation.
    default_cost_s: float = 0.1
    # Added to a failed request's latency so failures repel traffic.
    failure_penalty_s: float = 1.0

    def __post_init__(self):
        for name in ("update_interval_s", "default_cost_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 < self.step_size <= 1.0:
            raise ConfigError(
                f"step_size must be in (0, 1]: {self.step_size}")
        if not 0.0 <= self.min_share < 1.0:
            raise ConfigError(
                f"min_share must be in [0, 1): {self.min_share}")
        if self.failure_penalty_s < 0:
            raise ConfigError(
                f"failure_penalty_s must be >= 0: {self.failure_penalty_s}")


def project_to_floored_simplex(shares: dict[str, float],
                               floor: float) -> dict[str, float]:
    """Project onto ``{x : x_b >= floor, sum x = 1}`` (mass-preserving).

    Negative entries are clipped, the above-floor mass is rescaled to
    fill exactly the budget the floors leave; an all-degenerate input
    falls back to the uniform split.
    """
    names = list(shares)
    budget = 1.0 - floor * len(names)
    if budget < 0:
        raise ConfigError(
            f"floor {floor} infeasible for {len(names)} backends")
    clipped = {name: max(value, 0.0) for name, value in shares.items()}
    total = sum(clipped.values())
    if total <= 0:
        return {name: 1.0 / len(names) for name in names}
    scaled = {name: value / total for name, value in clipped.items()}
    excess = {name: max(value - floor, 0.0) for name, value in scaled.items()}
    excess_total = sum(excess.values())
    if excess_total <= 0:
        return {name: 1.0 / len(names) for name in names}
    return {
        name: floor + excess[name] * budget / excess_total
        for name in names
    }


class GradientDescentBalancer(Balancer):
    """Per-client split updated by projected gradient steps on latency."""

    def __init__(self, backend_names, config: GradientConfig | None = None):
        self._names = validate_backend_pool(backend_names, "gradient")
        self.config = config or GradientConfig()
        if self.config.min_share * len(self._names) >= 1.0:
            raise ConfigError(
                f"min_share {self.config.min_share} infeasible for "
                f"{len(self._names)} backends")
        uniform = 1.0 / len(self._names)
        self.shares = {name: uniform for name in self._names}
        self._cost_estimate = {
            name: self.config.default_cost_s for name in self._names}
        self._cost_sum = {name: 0.0 for name in self._names}
        self._cost_count = {name: 0 for name in self._names}
        self.update_count = 0
        self._loop = None

    def pick(self, rng, now: float) -> str:
        if len(self._names) == 1:
            return self._names[0]
        threshold = rng.random()
        running = 0.0
        for name in self._names:
            running += self.shares[name]
            if threshold < running:
                return name
        return self._names[-1]

    def on_response(self, backend: str, now: float, latency_s: float,
                    success: bool) -> None:
        cost = latency_s
        if not success:
            cost += self.config.failure_penalty_s
        self._cost_sum[backend] += cost
        self._cost_count[backend] += 1

    def update(self, now: float) -> dict[str, float]:
        """One gradient step from the costs accumulated since the last."""
        for name in self._names:
            if self._cost_count[name] > 0:
                self._cost_estimate[name] = (
                    self._cost_sum[name] / self._cost_count[name])
            # No samples: the previous estimate persists (the floor
            # traffic makes prolonged starvation unlikely).
            self._cost_sum[name] = 0.0
            self._cost_count[name] = 0
        mean_cost = sum(self.shares[name] * self._cost_estimate[name]
                        for name in self._names)
        if mean_cost > 0:
            eta = self.config.step_size
            stepped = {
                name: self.shares[name] * max(
                    1.0 - eta * (self._cost_estimate[name] - mean_cost)
                    / mean_cost, 0.0)
                for name in self._names
            }
            self.shares = project_to_floored_simplex(
                stepped, self.config.min_share)
        self.update_count += 1
        return dict(self.shares)

    def _run(self, sim):
        try:
            while True:
                yield sim.timeout(self.config.update_interval_s)
                self.update(sim.now)
        except Interrupted:
            return

    def start(self, sim: Simulator) -> None:
        if self._loop is not None and self._loop.is_alive:
            return
        self._loop = sim.spawn(self._run(sim), name="gradient/split")

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt()
        self._loop = None
