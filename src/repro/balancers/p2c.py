"""Power-of-two-choices with PeakEWMA cost — Linkerd's in-proxy default.

An *extension* beyond the paper's comparison set: it shows what per-request
feedback (no Prometheus scrape detour) buys relative to the
TrafficSplit-level algorithms. The proxy keeps, per backend, a PeakEWMA of
observed latency and a live in-flight counter; each request samples two
distinct backends uniformly and takes the one with the lower cost
``latency_ewma * (inflight + 1)`` (Linkerd's "Beyond Round Robin" cost
function).
"""

from __future__ import annotations

from repro.balancers.base import Balancer, validate_backend_pool
from repro.core.ewma import PeakEwma, half_life_to_beta


class P2cPeakEwmaBalancer(Balancer):
    """Per-request P2C + PeakEWMA balancer (extension)."""

    def __init__(self, backend_names, default_latency_s: float = 1.0,
                 half_life_s: float = 5.0, start_time: float = 0.0):
        names = validate_backend_pool(backend_names, "p2c")
        beta = half_life_to_beta(half_life_s)
        self._names = names
        self._latency = {
            name: PeakEwma(default_latency_s, beta, start_time)
            for name in names
        }
        self._inflight = {name: 0 for name in names}

    def _cost(self, name: str) -> float:
        return self._latency[name].value * (self._inflight[name] + 1)

    def pick(self, rng, now: float) -> str:
        if len(self._names) == 1:
            return self._names[0]
        first, second = rng.sample(self._names, 2)
        return first if self._cost(first) <= self._cost(second) else second

    def on_request_sent(self, backend: str, now: float) -> None:
        self._inflight[backend] += 1

    def on_response(self, backend: str, now: float, latency_s: float,
                    success: bool) -> None:
        self._inflight[backend] = max(self._inflight[backend] - 1, 0)
        self._latency[backend].observe(latency_s, now)
