"""Locality failover — the related-work mechanism (paper §6, extension).

Most service meshes ship multi-cluster *failover* rather than continuous
latency-aware balancing: all traffic stays in the local cluster until
health checks mark it unhealthy, then everything shifts to a fallback.
Istio's locality failover, Linkerd's failover extension and AWS AppMesh
all follow this pattern; the paper positions L3 against it ("traffic can
be quickly forwarded to other clusters without waiting ... for the
fallback mechanism to kick in").

This implementation uses outlier detection on the success rate: a backend
whose recent success rate falls below ``unhealthy_threshold`` is ejected
for ``ejection_s`` seconds and traffic moves to the preference-ordered
next backend. It gives the benchmark suite the "reactive failover"
comparison point the related work describes.
"""

from __future__ import annotations

from collections import deque

from repro.balancers.base import Balancer, validate_backend_pool
from repro.errors import ConfigError


class FailoverBalancer(Balancer):
    """Prefer backends in order; fail over on unhealthy success rate."""

    def __init__(self, preference_order, unhealthy_threshold: float = 0.5,
                 window: int = 50, ejection_s: float = 30.0):
        """Args:
            preference_order: backends from most to least preferred (the
                local cluster first, then fallbacks).
            unhealthy_threshold: eject when the windowed success rate of
                the active backend drops below this.
            window: number of recent responses the health check considers.
            ejection_s: how long an ejected backend stays out of rotation.
        """
        names = validate_backend_pool(preference_order, "failover")
        if not 0.0 < unhealthy_threshold <= 1.0:
            raise ConfigError(
                f"threshold must be in (0, 1]: {unhealthy_threshold}")
        if window < 1:
            raise ConfigError(f"window must be >= 1: {window}")
        if ejection_s < 0:
            raise ConfigError(f"ejection must be >= 0: {ejection_s}")
        self._order = names
        self.unhealthy_threshold = unhealthy_threshold
        self.window = window
        self.ejection_s = ejection_s
        self._outcomes = {name: deque(maxlen=window) for name in names}
        self._ejected_until = {name: float("-inf") for name in names}

    def _healthy(self, name: str, now: float) -> bool:
        if now < self._ejected_until[name]:
            return False
        outcomes = self._outcomes[name]
        # Too few samples to judge: assume healthy (fail open).
        if len(outcomes) < self.window // 2:
            return True
        return (sum(outcomes) / len(outcomes)) >= self.unhealthy_threshold

    def pick(self, rng, now: float) -> str:
        for name in self._order:
            if self._healthy(name, now):
                return name
        # Everything looks unhealthy: fall back to the top preference —
        # sending *somewhere* beats blackholing, and its window will
        # refresh fastest.
        return self._order[0]

    def on_response(self, backend: str, now: float, latency_s: float,
                    success: bool) -> None:
        if now < self._ejected_until[backend]:
            # Stale responses from requests in flight at ejection time
            # must not pre-judge the backend for its return to rotation.
            return
        outcomes = self._outcomes[backend]
        outcomes.append(1.0 if success else 0.0)
        if (len(outcomes) >= self.window // 2
                and sum(outcomes) / len(outcomes) < self.unhealthy_threshold):
            self._ejected_until[backend] = now + self.ejection_s
            outcomes.clear()  # judge afresh after the ejection expires
