"""Round-robin — the paper's primary baseline (Linkerd's simplest policy)."""

from __future__ import annotations

from repro.balancers.base import Balancer
from repro.errors import ConfigError


class RoundRobinBalancer(Balancer):
    """Cycle through the backends in a fixed order, one request each."""

    def __init__(self, backend_names):
        names = list(backend_names)
        if not names:
            raise ConfigError("round-robin needs at least one backend")
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate backends: {names}")
        self._names = names
        self._index = 0

    def pick(self, rng, now: float) -> str:
        name = self._names[self._index]
        self._index = (self._index + 1) % len(self._names)
        return name
