"""Round-robin — the paper's primary baseline (Linkerd's simplest policy)."""

from __future__ import annotations

from repro.balancers.base import Balancer, validate_backend_pool


class RoundRobinBalancer(Balancer):
    """Cycle through the backends in a fixed order, one request each."""

    def __init__(self, backend_names):
        self._names = validate_backend_pool(backend_names, "round-robin")
        self._index = 0

    def pick(self, rng, now: float) -> str:
        name = self._names[self._index]
        self._index = (self._index + 1) % len(self._names)
        return name
