"""Static weighted distribution (locality-bias baseline, extension)."""

from __future__ import annotations

from repro.balancers.base import Balancer
from repro.errors import ConfigError


class StaticWeightBalancer(Balancer):
    """Pick backends with fixed probabilities, e.g. a locality bias.

    Models the locality-aware schemes related work describes (Istio
    locality load balancing, GCP Traffic Director): a constant share of
    traffic stays local regardless of observed performance.
    """

    def __init__(self, weights: dict[str, float]):
        if not weights:
            raise ConfigError("static balancer needs at least one backend")
        for name, weight in weights.items():
            if weight < 0:
                raise ConfigError(f"negative weight: {name}={weight}")
        if sum(weights.values()) <= 0:
            raise ConfigError("at least one weight must be positive")
        self._weights = dict(weights)
        self._total = sum(weights.values())

    def pick(self, rng, now: float) -> str:
        threshold = rng.random() * self._total
        running = 0.0
        for name, weight in self._weights.items():
            running += weight
            if threshold < running:
                return name
        return next(reversed(self._weights))
