"""Deterministic random-number streams and distribution helpers.

Every stochastic component of the simulation draws from its own named
stream so that (a) runs are reproducible for a fixed master seed and
(b) adding a new component never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import math
import random

# Standard-normal quantiles used to parameterise log-normal service times
# from published medians and tail percentiles.
Z_P90 = 1.2815515655446004
Z_P99 = 2.3263478740408408
Z_P999 = 3.090232306167813

# Kinderman–Monahan ratio-of-uniforms constant, the exact expression
# CPython's ``random.normalvariate`` uses. Hot sampling sites inline the
# stdlib rejection loop (two Python frames per draw otherwise); the bit
# pattern must match ``random.NV_MAGICCONST`` so inlined draws consume the
# stream identically — asserted in ``tests/sim/test_rng.py``.
NV_MAGICCONST = 4 * math.exp(-0.5) / math.sqrt(2.0)


class RngRegistry:
    """A factory of independent, deterministically-seeded RNG streams."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream


def lognormal_params_from_percentiles(
        median: float, tail_value: float, tail_z: float = Z_P99,
) -> tuple[float, float]:
    """Derive log-normal ``(mu, sigma)`` from a median and a tail percentile.

    The paper observes that network/service latency is well characterised by
    a log-normal distribution (§3.1); scenario profiles are published as
    median and P99 series, which pin the distribution down exactly:
    ``mu = ln(median)`` and ``sigma = (ln(tail) - ln(median)) / z``.

    Args:
        median: the distribution's median (same unit as ``tail_value``).
        tail_value: the value at the tail percentile (must be >= median).
        tail_z: standard-normal quantile of the tail percentile
            (default: P99).
    """
    if median <= 0:
        raise ValueError(f"median must be positive: {median}")
    if tail_value < median:
        raise ValueError(
            f"tail value {tail_value} must be >= median {median}")
    mu = math.log(median)
    sigma = (math.log(tail_value) - mu) / tail_z if tail_value > median else 0.0
    return mu, sigma


def sample_lognormal(rng: random.Random, median: float, tail_value: float,
                     tail_z: float = Z_P99) -> float:
    """Draw one log-normal sample parameterised by median/tail percentile."""
    mu, sigma = lognormal_params_from_percentiles(median, tail_value, tail_z)
    if sigma == 0.0:
        return median
    return rng.lognormvariate(mu, sigma)
