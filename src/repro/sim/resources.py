"""Shared resources for simulation processes.

:class:`Server` models a bounded-concurrency executor with a FIFO wait
queue — the building block for microservice replicas (a replica with
``capacity`` worker slots queues excess requests, which is what makes load
balancing matter). :class:`Store` is an unbounded FIFO hand-off channel.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import Event


class Server:
    """A resource with ``capacity`` concurrent slots and a FIFO queue.

    Usage inside a process::

        yield server.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            server.release()
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"server capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Number of acquisitions waiting for a free slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event firing once a slot is held by the caller."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Grab a slot without an event if one is free right now.

        The fast-path (allocation-free) side of :meth:`acquire`: returns
        ``True`` with the slot held, or ``False`` without queueing
        anything — callers that get ``False`` park a waiter via
        :meth:`enqueue_waiter`.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def enqueue_waiter(self, event: Event) -> None:
        """Queue ``event`` for the next free slot (FIFO with acquire()).

        ``event`` may be any agenda event woken via ``succeed()`` —
        including a pooled callback from the fast-path engine; it shares
        one FIFO with generator-based acquirers.
        """
        self._waiters.append(event)

    def release(self) -> None:
        """Free one slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            # Hand the slot over directly; _in_use stays constant.
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1

    def cancel(self, event: Event) -> bool:
        """Remove a queued (not yet granted) acquisition. True if removed."""
        try:
            self._waiters.remove(event)
        except ValueError:
            return False
        return True


class Store:
    """An unbounded FIFO channel between producer and consumer processes."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event firing with the next item (FIFO order)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
