"""Cluster-sharded fleet execution with epoch-barrier merges.

The vector engine (``engine="vector"``) is record-for-record identical
to the event kernel, which caps its speed at the kernel's own event
rate. This module trades that equivalence for bulk throughput: it
executes a fleet scenario as a *bulk-synchronous* computation whose only
determinism contract is with **itself** — a fixed ``(scenario, seed)``
produces byte-identical results for **every** shard count (``jobs=1``
vs ``jobs=N`` is a committed CI assert), because every random draw is
keyed to the entity that consumes it, never to scheduling order.

Execution model (one *epoch* = one scrape interval):

* The **parent** owns the control plane — the real, unmodified
  :class:`~repro.core.controller.L3Controller` reading the real
  :class:`~repro.telemetry.query.PromMetricsSource` over a real
  :class:`~repro.telemetry.timeseries.TimeSeriesStore` — plus the
  open-loop arrival schedule and the weighted backend picks. Weights
  activate ``propagation_delay_s`` after each reconcile, forming a
  piecewise-constant *weight window* table; since reconciles happen
  only at epoch barriers and the propagation delay is shorter than an
  epoch, every window covering an epoch is known before its arrivals
  are picked (one vectorized ``searchsorted`` through the cumulative
  weights per window).
* **Workers** own whole clusters (cluster ``i`` of the sorted list goes
  to shard ``i % jobs``). Per epoch a worker receives each owned
  cluster's picked arrivals and computes them to completion in one
  vectorized pass: WAN out-leg draws from the cluster's private stream,
  round-robin replica assignment in backend-arrival order, log-normal
  service draws against the profile series evaluated at the backend
  arrival time, an exact c-server FIFO recurrence per replica (a heap
  of free-at times that persists across epochs), then the WAN back-leg
  with drift evaluated at completion time. Request outcomes return to
  the parent at the barrier together with a telemetry snapshot cut at
  the barrier time (completions with ``end <= T`` folded into
  cumulative counters and histogram buckets; later completions stay
  pending), which the parent appends to the store exactly as the
  scraper would — so the controller sees the same metric shapes, names
  and cadence as in the event-driven engines.

Modeling deltas vs. the event kernel (deliberate, documented, and
identical for all shard counts): WAN jitter normals come from
``standard_normal`` rather than the Kinderman–Monahan rejection loop;
the service time is drawn at the backend's *arrival* time rather than
at execution start; and FIFO admission is resolved in epoch batches, so
a late-arriving request of epoch ``k`` can occupy a server slot ahead
of an earlier-arriving request of epoch ``k+1``. None of these depend
on shard count — the epoch structure, the per-entity streams, and the
per-cluster batch contents are all functions of ``(scenario, seed)``
alone.

Scope: the shard engine runs the paper's controller algorithms
(``"l3"``, ``"l3-peak"``) on topology-carrying fleet scenarios, without
retries, deadlines, ejection, faults or tracing — anything else raises
:class:`~repro.errors.ConfigError` up front rather than silently
diverging.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import random
from dataclasses import replace
from heapq import heapreplace

from repro.core.config import L3Config
from repro.core.controller import L3Controller
from repro.errors import ConfigError
from repro.mesh.cluster import backend_name
from repro.mesh.network import LOCAL_LINK, WanLink
from repro.mesh.request import RequestRecord
from repro.sim.rng import Z_P99
from repro.sim.vectorpath import require_numpy
from repro.telemetry import names as metric_names
from repro.telemetry.histogram import DEFAULT_BUCKET_BOUNDS_S
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.timeseries import TimeSeriesStore

#: Algorithms the shard engine can run (controller + TrafficSplit pairs
#: whose controllers are transport-agnostic).
SHARD_ALGORITHMS = ("l3", "l3-peak")

# The client proxy's forwarding overhead (ClientProxy default).
_FORWARD_OVERHEAD_S = 0.0002

_ARRIVALS = ("uniform", "poisson")


def _stream_seed_words(seed: int, name: str) -> list[int]:
    """Four 32-bit key words for an entity's private RandomState.

    blake2b keeps the derivation independent of PYTHONHASHSEED and of
    process boundaries — the same ``(seed, name)`` yields the same
    stream in the parent, in a forked worker, and in a spawned one.
    """
    digest = hashlib.blake2b(
        f"{seed}/{name}".encode("utf-8"), digest_size=16).digest()
    return [int.from_bytes(digest[i:i + 4], "big") for i in range(0, 16, 4)]


def _stream_state(seed: int, name: str, np):
    return np.random.RandomState(
        np.asarray(_stream_seed_words(seed, name), dtype=np.uint32))


def _series_at(series, times, np, knots=None):
    """Vectorized ``PiecewiseSeries.value_at`` over an array of times.

    ``np.interp`` handles the interior and the edge clamps; a periodic
    series additionally wraps across the seam with the same formula as
    the scalar ``_wrap_interpolate``. ``knots`` is an optional
    pre-converted ``(times, values)`` array pair (hot callers evaluate
    the same series every epoch).
    """
    if series._constant:
        return np.full(times.shape, series._values[0])
    period = series.period_s
    t = times if period is None else times % period
    if knots is None:
        out = np.interp(t, series._times, series._values)
    else:
        out = np.interp(t, knots[0], knots[1])
    if period is not None:
        t_first, t_last = series._times[0], series._times[-1]
        v_first, v_last = series._values[0], series._values[-1]
        outside = (t <= t_first) | (t >= t_last)
        if outside.any():
            gap = (period - t_last) + t_first
            if gap <= 0:
                out = np.where(outside, v_first, out)
            else:
                offset = np.where(t >= t_last, t - t_last,
                                  (period - t_last) + t)
                wrapped = v_last + (v_first - v_last) * offset / gap
                out = np.where(outside, wrapped, out)
    return out


def _wan_delay(link: WanLink, z, spike_u, times, np):
    """Vectorized one-way WAN delays for requests crossing at ``times``.

    Same distribution family as ``WanLink.delay`` (log-normal around a
    drifting median, plus rare spikes); ``z``/``spike_u`` are the
    pre-drawn per-request normals and spike uniforms.
    """
    n = times.shape[0]
    base = link.base_delay_s
    if base == 0.0:
        return np.zeros(n)
    if link.drift_amplitude > 0.0:
        drift = 1.0 + link.drift_amplitude * np.sin(
            2.0 * np.pi * times / link.drift_period_s)
        median = base * drift
    else:
        median = np.full(n, base)
    if link.jitter_p99_ratio > 1.0:
        mu = np.log(median)
        sigma = (np.log(median * link.jitter_p99_ratio) - mu) / Z_P99
        delay = np.exp(mu + z * sigma)
    else:
        delay = median
    if link.spike_prob > 0.0:
        delay = np.where(spike_u < link.spike_prob,
                         delay * link.spike_multiplier, delay)
    return delay


class _ClusterState:
    """One cluster's backend: streams, FIFO replicas, telemetry."""

    __slots__ = ("cluster", "profile", "out_link", "back_link", "heaps",
                 "wan_state", "svc_state", "rr", "has_failures",
                 "dispatched", "completed", "failures", "succ_buckets",
                 "fail_buckets", "succ_sum", "succ_count", "_pend_end",
                 "_pend_lat", "_pend_succ", "bounds", "np",
                 "_median_knots", "_p99_knots")

    def __init__(self, cluster: str, profile, out_link: WanLink,
                 back_link: WanLink, replicas: int, capacity: int,
                 seed: int, bounds, np):
        self.cluster = cluster
        self.profile = profile
        self.out_link = out_link
        self.back_link = back_link
        # Exact c-server FIFO state: per replica, a heap of the times
        # its ``capacity`` slots become free. All-zero lists are valid
        # heaps already.
        self.heaps = [[0.0] * capacity for _ in range(replicas)]
        self.wan_state = _stream_state(seed, f"wan/{cluster}", np)
        self.svc_state = _stream_state(seed, f"svc/{cluster}", np)
        self.rr = 0
        series = profile.failure_prob
        self.has_failures = not (series._constant
                                 and series._values[0] <= 0.0)
        self.dispatched = 0
        self.completed = 0
        self.failures = 0
        self.succ_buckets = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.fail_buckets = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.succ_sum = 0.0
        self.succ_count = 0
        self._pend_end: list = []
        self._pend_lat: list = []
        self._pend_succ: list = []
        self.bounds = np.asarray(bounds)
        self.np = np

        def knots(series):
            if series._constant:
                return None
            return (np.asarray(series._times), np.asarray(series._values))

        self._median_knots = knots(profile.median_latency_s)
        self._p99_knots = knots(profile.p99_latency_s)

    def run_epoch(self, idx, t):
        """Compute one epoch's arrivals for this cluster to completion.

        Args:
            idx: global request indices, in arrival order.
            t: client send times (== intended starts), same order.

        Returns:
            ``(idx, end, success)`` arrays in backend-arrival order.
        """
        np = self.np
        n = t.shape[0]
        self.dispatched += n
        # One RNG call per kind per epoch: the out-leg normals/uniforms
        # occupy the first half of each block (arrival order), the
        # back-leg the second half (backend-arrival order).
        wan_z = self.wan_state.standard_normal(2 * n)
        wan_u = self.wan_state.random_sample(2 * n)
        wan_out = _wan_delay(self.out_link, wan_z[:n], wan_u[:n], t, np)
        arrival = t + _FORWARD_OVERHEAD_S + wan_out
        order = np.argsort(arrival, kind="stable")
        arrival = arrival[order]
        idx = idx[order]
        t = t[order]

        # Round-robin replica assignment in backend-arrival order; the
        # cursor persists across epochs.
        replicas = len(self.heaps)
        r_idx = (self.rr + np.arange(n)) % replicas
        self.rr = (self.rr + n) % replicas

        profile = self.profile
        median = _series_at(profile.median_latency_s, arrival, np,
                            self._median_knots)
        median = np.maximum(median, 1e-6)
        p99 = _series_at(profile.p99_latency_s, arrival, np,
                         self._p99_knots)
        z = self.svc_state.standard_normal(n)
        mu = np.log(median)
        with np.errstate(invalid="ignore", divide="ignore"):
            sigma = (np.log(np.maximum(p99, 1e-300)) - mu) / Z_P99
            service = np.where(p99 <= median, median,
                               np.exp(mu + z * sigma))
        if self.has_failures:
            fail_u = self.svc_state.random_sample(n)
            prob = _series_at(profile.failure_prob, arrival, np)
            failed = fail_u < prob
            # A failing request occupies its slot for the (fast) error
            # latency, as Replica.handle does.
            service = np.where(failed, profile.failure_latency_s, service)
            success = ~failed
        else:
            success = np.ones(n, dtype=bool)

        # The FIFO recurrence is the one per-request scalar loop left:
        # free = heap[0]; start = max(arrival, free); heapreplace.
        heaps = self.heaps
        arr_list = arrival.tolist()
        svc_list = service.tolist()
        ridx_list = r_idx.tolist()
        comp_list = [0.0] * n
        for i in range(n):
            heap = heaps[ridx_list[i]]
            free = heap[0]
            a = arr_list[i]
            start = a if a >= free else free
            c = start + svc_list[i]
            heapreplace(heap, c)
            comp_list[i] = c
        comp = np.asarray(comp_list)

        wan_back = _wan_delay(self.back_link, wan_z[n:], wan_u[n:],
                              comp, np)
        end = comp + wan_back
        # Client-perceived latency, as the proxy's telemetry records it.
        self._pend_end.append(end)
        self._pend_lat.append(end - t)
        self._pend_succ.append(success)
        return idx, end, success

    def snapshot(self, barrier: float):
        """Fold completions up to ``barrier`` and cut a scrape sample."""
        np = self.np
        if self._pend_end:
            end = np.concatenate(self._pend_end)
            lat = np.concatenate(self._pend_lat)
            succ = np.concatenate(self._pend_succ)
            done = end <= barrier
            if done.any():
                keep = ~done
                self._pend_end = [end[keep]]
                self._pend_lat = [lat[keep]]
                self._pend_succ = [succ[keep]]
                lat_done = lat[done]
                succ_done = succ[done]
                n_done = int(done.sum())
                n_fail = n_done - int(succ_done.sum())
                self.completed += n_done
                self.failures += n_fail
                ok = lat_done[succ_done]
                if ok.shape[0]:
                    idx = np.searchsorted(self.bounds, ok, side="left")
                    self.succ_buckets += np.bincount(
                        idx, minlength=self.succ_buckets.shape[0])
                    self.succ_sum += float(ok.sum())
                    self.succ_count += ok.shape[0]
                if n_fail:
                    bad = lat_done[~succ_done]
                    idx = np.searchsorted(self.bounds, bad, side="left")
                    self.fail_buckets += np.bincount(
                        idx, minlength=self.fail_buckets.shape[0])
        return (
            float(self.completed),
            float(self.failures),
            tuple(np.cumsum(self.succ_buckets).tolist()),
            self.succ_sum,
            float(self.succ_count),
            tuple(np.cumsum(self.fail_buckets).tolist()),
            float(self.dispatched - self.completed),
        )


class _ShardWorker:
    """All clusters owned by one shard; runs inline or in a subprocess."""

    def __init__(self, payload: dict):
        np = require_numpy()
        seed = payload["seed"]
        bounds = payload["bounds"]
        self.clusters = {
            cluster: _ClusterState(
                cluster, spec["profile"], spec["out_link"],
                spec["back_link"], spec["replicas"], spec["capacity"],
                seed, bounds, np)
            for cluster, spec in payload["clusters"].items()
        }
        self._order = sorted(self.clusters)

    def run_epoch(self, batches: dict, barrier: float):
        """One epoch: compute batches, fold to the barrier, snapshot.

        Returns ``(results, telemetry)``: request outcome arrays per
        cluster with a non-empty batch, and one scrape snapshot per
        owned cluster (the scraper samples idle backends too).
        """
        results = {}
        telemetry = {}
        for cluster in self._order:
            state = self.clusters[cluster]
            batch = batches.get(cluster)
            if batch is not None:
                results[cluster] = state.run_epoch(*batch)
            telemetry[cluster] = state.snapshot(barrier)
        return results, telemetry


def _worker_main(conn, payload: dict) -> None:
    """Subprocess loop: one epoch per message, ``None`` to stop."""
    worker = _ShardWorker(payload)
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            batches, barrier = message
            conn.send(worker.run_epoch(batches, barrier))
    finally:
        conn.close()


class _WeightWindows:
    """Piecewise-constant active weights; the controller's WeightSink.

    Each ``set_weights`` at reconcile time ``T`` opens a window at
    ``T + propagation_delay_s`` (TrafficSplit's control-plane push
    latency). Windows are cumulative-weight tables in backend order, so
    one ``searchsorted`` resolves a whole epoch of picks.
    """

    def __init__(self, names: list[str], propagation_delay_s: float, np):
        self.names = list(names)
        self.propagation_delay_s = propagation_delay_s
        self.np = np
        self._active = {name: 1 for name in self.names}
        self.times = [0.0]
        self.cums = [np.cumsum(
            np.asarray([1.0] * len(self.names)))]
        self.update_count = 0

    def set_weights(self, weights: dict[str, int], now: float) -> None:
        for name in weights:
            if name not in self._active:
                raise ConfigError(f"unknown backend in weights: {name!r}")
        self._active.update(weights)
        cum = self.np.cumsum(self.np.asarray(
            [float(self._active[name]) for name in self.names]))
        self.times.append(now + self.propagation_delay_s)
        self.cums.append(cum)
        self.update_count += 1

    def pick(self, times, uniforms):
        """Backend index per request (vectorized weighted pick)."""
        np = self.np
        window = np.searchsorted(
            np.asarray(self.times), times, side="right") - 1
        out = np.empty(times.shape[0], dtype=np.int64)
        last = len(self.names) - 1
        for w in np.unique(window).tolist():
            sel = window == w
            cum = self.cums[w]
            total = cum[-1]
            # bisect_right semantics with the same end clamp as
            # TrafficSplit.pick.
            pos = np.searchsorted(cum, uniforms[sel] * total,
                                  side="right")
            out[sel] = np.minimum(pos, last)
        return out


class _ArrivalSchedule:
    """The open-loop arrival trajectory, pulled one epoch at a time.

    Mirrors ``OpenLoopLoadGenerator``: each gap is evaluated at the
    previous arrival's time; the terminal gap crossing the deadline is
    discarded. Poisson gaps draw from a dedicated scalar stream (parent
    side, so shard-count invariant by construction).
    """

    def __init__(self, rps, total_s: float, arrival: str, seed: int):
        self.rps = rps
        self.total_s = total_s
        self.poisson = arrival == "poisson"
        self._rng = random.Random(
            int.from_bytes(hashlib.blake2b(
                f"{seed}/shard-arrivals".encode("utf-8"),
                digest_size=8).digest(), "big"))
        self._next = self._advance(0.0)

    def _advance(self, t: float):
        series = self.rps
        rate = series._values[0] if series._constant else series.value_at(t)
        if rate < 1e-9:
            rate = 1e-9
        gap = self._rng.expovariate(rate) if self.poisson else 1.0 / rate
        nxt = t + gap
        return nxt if nxt < self.total_s else None

    def pull(self, limit: float) -> list[float]:
        """All arrivals strictly before ``limit``, in time order."""
        out: list[float] = []
        nxt = self._next
        if nxt is None or nxt >= limit:
            return out
        # This loop runs once per request; locals shave ~40% off it.
        append = out.append
        value_at = self.rps.value_at
        total = self.total_s
        if self.poisson:
            expovariate = self._rng.expovariate
            while nxt is not None and nxt < limit:
                append(nxt)
                rate = value_at(nxt)
                candidate = nxt + expovariate(
                    rate if rate >= 1e-9 else 1e-9)
                nxt = candidate if candidate < total else None
        else:
            while nxt < limit:
                append(nxt)
                rate = value_at(nxt)
                candidate = nxt + 1.0 / (rate if rate >= 1e-9 else 1e-9)
                if candidate >= total:
                    nxt = None
                    break
                nxt = candidate
        self._next = nxt
        return out


def run_sharded_benchmark(scenario, algorithm: str = "l3",
                          duration_s: float = 600.0, seed: int = 1,
                          l3_config: L3Config | None = None,
                          env=None, jobs: int = 1):
    """Run one fleet scenario through the sharded bulk engine.

    Args:
        scenario: a topology-carrying :class:`Scenario` (from
            :func:`repro.workloads.fleet.build_fleet_scenario`).
        algorithm: one of :data:`SHARD_ALGORITHMS`.
        duration_s: measured duration (warm-up prepended from ``env``).
        seed: master seed; with the scenario it fully determines the
            run, for every ``jobs`` value.
        l3_config: controller tunables.
        env: :class:`~repro.bench.coordinator.ScenarioBenchConfig`;
            resilience knobs must be off (the engine's scope).
        jobs: worker process count; ``1`` runs the shard inline.

    Returns:
        A :class:`~repro.bench.coordinator.BenchmarkResult` whose
        records are sorted by ``(end_s, request_id)`` (completion
        order). ``events_processed`` is 0 — there is no event kernel;
        ``bench_fleet.py`` reports equivalent events/sec instead.
    """
    np = require_numpy()
    from repro.bench.coordinator import (
        SCENARIO_SERVICE,
        BenchmarkResult,
        ScenarioBenchConfig,
    )

    env = env or ScenarioBenchConfig()
    if algorithm not in SHARD_ALGORITHMS:
        raise ConfigError(
            f"the shard engine runs {SHARD_ALGORITHMS}; {algorithm!r} "
            "needs the per-event engines (engine=\"fast\"/\"vector\")")
    topology = getattr(scenario, "topology", None)
    if topology is None:
        raise ConfigError(
            f"scenario {scenario.name!r} carries no FleetTopology; the "
            "shard engine partitions clusters along one (see "
            "repro.workloads.fleet.build_fleet_scenario)")
    if scenario.faults:
        raise ConfigError(
            "the shard engine does not run fault schedules; use the "
            "per-event engines")
    if getattr(scenario, "autoscale", None) is not None:
        raise ConfigError(
            "the shard engine runs fixed replica sets; autoscaling "
            "scenarios need the per-event engines")
    if env.max_retries or env.request_timeout_s is not None \
            or env.outlier_ejection is not None:
        raise ConfigError(
            "the shard engine supports no retries, deadlines or "
            "ejection; disable them or use the per-event engines")
    if env.arrival not in _ARRIVALS:
        raise ConfigError(
            f"arrival must be one of {_ARRIVALS}: {env.arrival!r}")
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1: {jobs}")
    if duration_s <= 0:
        raise ConfigError(f"duration must be positive: {duration_s}")
    epoch_s = env.scrape_interval_s
    if epoch_s <= 0:
        raise ConfigError(
            f"scrape interval must be positive: {epoch_s}")
    if not 0.0 <= env.propagation_delay_s < epoch_s:
        raise ConfigError(
            "the shard engine needs 0 <= propagation delay < the scrape "
            f"interval: {env.propagation_delay_s} vs {epoch_s}")

    config = l3_config or L3Config()
    config = replace(config, use_peak_ewma=(algorithm == "l3-peak"))
    ticks_per_reconcile = round(config.reconcile_interval_s / epoch_s)
    if ticks_per_reconcile < 1 or abs(
            ticks_per_reconcile * epoch_s
            - config.reconcile_interval_s) > 1e-9:
        raise ConfigError(
            "the shard engine reconciles at epoch barriers: "
            "reconcile_interval_s must be a positive multiple of the "
            f"scrape interval ({config.reconcile_interval_s} vs {epoch_s})")

    clusters = sorted(scenario.cluster_profiles)
    client = topology.client_cluster
    names = [backend_name(SCENARIO_SERVICE, c) for c in clusters]
    series_names = [f"{client}|{name}" for name in names]
    bounds = DEFAULT_BUCKET_BOUNDS_S

    # --- control plane (parent) ---------------------------------------- #
    store = TimeSeriesStore()
    source = PromMetricsSource(store, scope=client)
    sink = _WeightWindows(names, env.propagation_delay_s, np)
    controller = L3Controller(names, source, sink, config=config,
                              start_time=0.0)

    total = env.warmup_s + duration_s
    schedule = _ArrivalSchedule(scenario.rps, total, env.arrival, seed)
    pick_state = _stream_state(seed, "shard-picks", np)

    # --- shard the clusters -------------------------------------------- #
    def cluster_payload(cluster: str) -> dict:
        if cluster == client:
            out_link = back_link = LOCAL_LINK
        else:
            out_link = topology.links[(client, cluster)]
            back_link = topology.links[(cluster, client)]
        return {
            "profile": scenario.cluster_profiles[cluster],
            "out_link": out_link,
            "back_link": back_link,
            "replicas": topology.replicas[cluster],
            "capacity": topology.capacities[cluster],
        }

    jobs = min(jobs, len(clusters))
    shard_of = {c: i % jobs for i, c in enumerate(clusters)}
    payloads = [
        {"seed": seed, "bounds": bounds,
         "clusters": {c: cluster_payload(c)
                      for c in clusters if shard_of[c] == s}}
        for s in range(jobs)
    ]

    workers: list = []
    pipes: list = []
    procs: list = []
    if jobs == 1:
        workers = [_ShardWorker(payloads[0])]
    else:
        ctx = multiprocessing.get_context()
        for s in range(jobs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, payloads[s]),
                name=f"shard-{s}", daemon=True)
            proc.start()
            child_conn.close()
            pipes.append(parent_conn)
            procs.append(proc)

    n_epochs = max(1, math.ceil(total / epoch_s - 1e-9))
    generated = 0
    t_chunks: list = []
    pick_chunks: list = []
    idx_chunks: list = []
    end_chunks: list = []
    succ_chunks: list = []

    try:
        for k in range(n_epochs):
            barrier = (k + 1) * epoch_s
            arrivals = schedule.pull(min(barrier, total))
            batches: list[dict] = [{} for _ in range(jobs)]
            if arrivals:
                t_arr = np.asarray(arrivals)
                u_arr = pick_state.random_sample(t_arr.shape[0])
                picks = sink.pick(t_arr, u_arr)
                idx_arr = np.arange(
                    generated, generated + t_arr.shape[0], dtype=np.int64)
                generated += t_arr.shape[0]
                t_chunks.append(t_arr)
                pick_chunks.append(picks)
                for b in np.unique(picks).tolist():
                    sel = picks == b
                    cluster = clusters[b]
                    batches[shard_of[cluster]][cluster] = (
                        idx_arr[sel], t_arr[sel])
            if jobs == 1:
                replies = [workers[0].run_epoch(batches[0], barrier)]
            else:
                for s in range(jobs):
                    pipes[s].send((batches[s], barrier))
                replies = [pipes[s].recv() for s in range(jobs)]

            # Merge: outcomes keyed by global request index, telemetry
            # appended in fixed backend order — both independent of how
            # clusters were sharded.
            telemetry: dict = {}
            for results, telem in replies:
                for r_idx, r_end, r_succ in results.values():
                    idx_chunks.append(r_idx)
                    end_chunks.append(r_end)
                    succ_chunks.append(r_succ)
                telemetry.update(telem)
            if barrier <= total + 1e-9:
                for cluster, series_name in zip(clusters, series_names):
                    (completed, failed, succ_buckets, succ_sum,
                     succ_count, fail_buckets, inflight) = telemetry[cluster]
                    series = store.series
                    series(series_name, metric_names.REQUESTS_TOTAL).append(
                        barrier, completed)
                    series(series_name, metric_names.FAILURES_TOTAL).append(
                        barrier, failed)
                    series(series_name,
                           metric_names.SUCCESS_LATENCY_BUCKETS).append(
                        barrier, succ_buckets)
                    series(series_name,
                           metric_names.SUCCESS_LATENCY_SUM).append(
                        barrier, succ_sum)
                    series(series_name,
                           metric_names.SUCCESS_LATENCY_COUNT).append(
                        barrier, succ_count)
                    series(series_name,
                           metric_names.FAILURE_LATENCY_BUCKETS).append(
                        barrier, fail_buckets)
                    series(series_name, metric_names.INFLIGHT).append(
                        barrier, inflight)
                if (k + 1) % ticks_per_reconcile == 0:
                    controller.reconcile(barrier)
    finally:
        if jobs > 1:
            for pipe in pipes:
                try:
                    pipe.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for proc in procs:
                proc.join(timeout=30.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
            for pipe in pipes:
                pipe.close()

    # --- assemble the result ------------------------------------------- #
    records = []
    if generated:
        t_all = np.concatenate(t_chunks)
        picks_all = np.concatenate(pick_chunks)
        end_all = np.empty(generated)
        succ_all = np.zeros(generated, dtype=bool)
        scatter = np.concatenate(idx_chunks)
        end_all[scatter] = np.concatenate(end_chunks)
        succ_all[scatter] = np.concatenate(succ_chunks)
        # All arrivals are < total by construction; the measured window
        # only trims the warm-up, and records come out in completion
        # order (end, then request id) as the event engines report them.
        measured = np.nonzero(t_all >= env.warmup_s)[0]
        order = measured[np.lexsort(
            (measured, end_all[measured]))]
        records = [
            RequestRecord(i, SCENARIO_SERVICE, client, names[b],
                          t, t, e, ok)
            for i, b, t, e, ok in zip(
                order.tolist(), picks_all[order].tolist(),
                t_all[order].tolist(), end_all[order].tolist(),
                succ_all[order].tolist())
        ]
    return BenchmarkResult(
        scenario=scenario.name, algorithm=algorithm, seed=seed,
        duration_s=duration_s, records=records,
        controller_weights=dict(controller.last_weights),
        events_processed=0)
