"""Discrete-event simulation kernel.

A small, deterministic, generator-based simulator in the style of SimPy:
processes are Python generators that ``yield`` events (timeouts, other
processes, bare events, or combinations) and are resumed when those events
fire. The kernel is the substrate on which the whole multi-cluster mesh
model runs.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Server, Store
from repro.sim.rng import RngRegistry, lognormal_params_from_percentiles

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "RngRegistry",
    "Server",
    "Simulator",
    "Store",
    "Timeout",
    "lognormal_params_from_percentiles",
]
