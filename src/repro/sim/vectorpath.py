"""Numpy-banked draws and chunked telemetry for the vector engine.

The vector engine (``engine="vector"``, :class:`VectorRequestEngine` in
:mod:`repro.mesh.fastdispatch`) keeps the fast engine's event-order
contract — record-for-record identical output — while moving its RNG-
and telemetry-heavy inner loops from per-event scalar work to per-chunk
numpy batches. This module is the numerical substrate; it knows nothing
about proxies or replicas.

**The RNG-compatibility contract.** CPython's ``random.Random`` and
``numpy.random.RandomState`` share the MT19937 generator *and* the
53-bit uniform construction (``(a*2**26 + b) * 2**-53`` from two raw
32-bit words), so a RandomState seeded by transplanting a
``random.Random``'s state produces **bit-identical** uniforms in the
identical stream order. Each bank below transplants the state, draws a
block, and writes the advanced state back — scalar draws can resume on
the same stream mid-run and continue exactly where the block ended.
This is verified at import-from-engine time by :func:`assert_bit_identical`
(the vector twin of the fast path's ``NV_MAGICCONST`` guard): if the
host's numpy ever stops matching, the engine refuses to start instead of
silently diverging.

What is *not* bit-identical across libms is ``log``/``exp``:
``numpy.log`` and ``math.log`` disagree in the last ulp on ~0.4% of
inputs on common hosts. The banks therefore use numpy only where a
last-ulp wobble is provably harmless and fall back to ``math`` scalars
at decision boundaries:

* :class:`UniformBank` returns raw uniforms (no libm involved).
* :class:`ZQueue` evaluates the Kinderman–Monahan acceptance test
  ``z²/4 <= -log(u2)`` in bulk with ``numpy.log``, then *re-checks with
  scalar* ``math.log`` every sample whose margin is inside
  ``1e-9`` — far wider than numpy's worst-case log error — so the
  accept/reject **decision** always matches the scalar loop bit for bit.
  The accepted ``z`` itself involves only IEEE ``*-/`` (elementwise
  numpy ≡ scalar), and the final ``exp(mu + z*sigma)`` stays a
  ``math.exp`` scalar at consumption time.
"""

from __future__ import annotations

import math
import random as _random

from repro.errors import ConfigError, TelemetryError
from repro.sim.rng import NV_MAGICCONST, Z_P99

try:  # numpy is the optional [fleet] extra — see pyproject.toml
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None

_EXTRA_HINT = (
    "the vector engine needs numpy, which is the optional [fleet] extra "
    "of this package — install it with `pip install 'repro[fleet]'` (or "
    "`pip install numpy`), or run with engine=\"fast\" instead")

# Acceptance margin below which the K-M decision is re-checked with
# math.log. numpy's log error is <= a few ulps (~1e-15 relative, so
# ~8e-15 absolute for |log u2| <= 36); 1e-9 is safely generous while
# still re-checking almost nothing.
_LOG_BOUNDARY = 1e-9


def require_numpy():
    """Return numpy, or raise a ConfigError naming the [fleet] extra."""
    if _np is None:
        raise ConfigError(_EXTRA_HINT)
    return _np


# --------------------------------------------------------------------- #
# MT19937 state transplant
# --------------------------------------------------------------------- #

def transplant_state(rng: _random.Random):
    """A numpy RandomState positioned exactly where ``rng`` is.

    ``random.Random.getstate()`` is ``(3, internal, gauss_next)`` where
    ``internal`` is the 624-word MT key plus the word index; RandomState
    accepts the same pair verbatim.
    """
    np = require_numpy()
    version, internal, _gauss = rng.getstate()
    if version != 3 or len(internal) != 625:
        raise ConfigError(
            f"unsupported random.Random state (version {version}, "
            f"{len(internal)} words); cannot transplant to numpy")
    state = np.random.RandomState()
    # fromiter converts the 624-word key in one C pass (asarray on a
    # tuple of Python ints is several times slower).
    state.set_state(
        ("MT19937", np.fromiter(internal, dtype=np.uint64, count=624),
         internal[624]))
    return state


def sync_back(rng: _random.Random, state) -> None:
    """Advance ``rng`` to where the transplanted ``state`` has moved.

    After this, scalar ``rng.random()`` draws continue the stream exactly
    where the numpy block ended. The gauss cache is dropped (None): the
    engine's streams never use ``random.gauss``.
    """
    _name, key, pos, _has_gauss, _cached = state.get_state(legacy=True)
    # .tolist() converts the key to Python ints in one C pass.
    rng.setstate((3, tuple(key.tolist()) + (int(pos),), None))


_probe_result: bool | None = None


def numpy_bit_identical() -> bool:
    """Whether this host's numpy reproduces CPython uniforms bit-for-bit.

    Draws the same stream both ways (including a transplant-back
    continuity check) and compares exactly. Cached after the first call.
    """
    global _probe_result
    if _probe_result is None:
        require_numpy()
        reference = _random.Random(0xD1CE)
        twin = _random.Random(0xD1CE)
        state = transplant_state(twin)
        block = state.random_sample(64).tolist()
        sync_back(twin, state)
        _probe_result = (
            block == [reference.random() for _ in range(64)]
            and twin.random() == reference.random())
    return _probe_result


def assert_bit_identical() -> None:
    """Refuse to run on a numpy whose uniforms diverge from CPython's."""
    if not numpy_bit_identical():
        raise ConfigError(
            "this numpy's MT19937 uniforms are not bit-identical to "
            "CPython's random.Random — the vector engine cannot keep its "
            "record-for-record equivalence contract on this host; run "
            'with engine="fast" instead')


# --------------------------------------------------------------------- #
# Banks
# --------------------------------------------------------------------- #

class UniformBank:
    """Block-drawn uniforms, bit-identical to serial ``rng.random()``.

    One state transplant per ``block`` draws replaces ``block`` method
    calls through ``random.Random``. ``tolist()`` converts eagerly so
    consumers receive plain Python floats (numpy scalars would leak into
    agenda timestamps and request records, changing reprs and digests).
    """

    __slots__ = ("rng", "block", "_buf", "_idx")

    def __init__(self, rng: _random.Random, block: int = 4096):
        if block < 1:
            raise ConfigError(f"bank block must be >= 1: {block}")
        self.rng = rng
        self.block = block
        self._buf: list[float] = []
        self._idx = 0

    def next(self) -> float:
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            state = transplant_state(self.rng)
            self._buf = buf = state.random_sample(self.block).tolist()
            sync_back(self.rng, state)
            idx = 0
        self._idx = idx + 1
        return buf[idx]


class ZQueue:
    """Banked Kinderman–Monahan normal variates for one replica stream.

    ``BackendProfile.sample_service_time`` consumes exactly two uniforms
    per rejection-loop iteration, so the pairing of uniforms into
    ``(u1, u2)`` candidates is invariant under blocking: the sequence of
    *accepted* z values over the stream is well-defined regardless of
    where blocks start. This queue draws an even block, evaluates every
    candidate pair at once, and banks the accepted z's; :func:`pop`
    returns them in exactly the order the scalar loop would.

    Rejected tail pairs at the end of a block are pre-consumed uniforms
    the scalar engine would also have consumed (and rejected) — stream
    alignment is preserved. The acceptance decision is libm-guarded as
    described in the module docstring.

    The queue *owns* the stream while it is active: bankable means
    nothing else consumes the replica's rng mid-run (see
    :func:`bankable_profile`), so the state is transplanted into numpy
    once, kept there across refills, and written back to the Python rng
    only on :meth:`release` (end of run). Per-refill cost is then pure
    vector math — the 625-word state copy is paid once per replica, not
    once per block.

    A fleet cell has thousands of replica streams most of which serve
    only dozens of requests, and for those the transplant plus numpy
    call overhead costs more than it saves (measured ~4x slower than the
    scalar loop at ~100 draws). So the queue starts *cold*: the first
    ``warmup`` pops run the identical scalar rejection loop straight off
    the Python rng — same draws, same values, zero numpy. Only a stream
    that outlives the warmup transplants and switches to banked blocks,
    which then *adapt*: starting at ``block`` and doubling each refill
    up to ``max_block``. (Blocking is alignment-safe at any even size,
    and the switch point only moves work between two bit-identical
    implementations, so neither knob can affect the values produced.)
    """

    __slots__ = ("rng", "block", "max_block", "_cold_left", "_state",
                 "_z", "_idx")

    def __init__(self, rng: _random.Random, block: int = 1024,
                 max_block: int = 8192, warmup: int = 512):
        if block < 2 or block % 2:
            raise ConfigError(f"z-queue block must be even, >= 2: {block}")
        if max_block < block:
            raise ConfigError(
                f"max_block must be >= block: {max_block} < {block}")
        if warmup < 0:
            raise ConfigError(f"warmup must be >= 0: {warmup}")
        self.rng = rng
        self.block = block
        self.max_block = max_block
        self._cold_left = warmup
        self._state = None
        self._z: list[float] = []
        self._idx = 0

    def pop(self) -> float:
        idx = self._idx
        z = self._z
        if idx < len(z):
            self._idx = idx + 1
            return z[idx]
        cold = self._cold_left
        if cold:
            # Warmup: the scalar Kinderman-Monahan loop, verbatim from
            # BackendProfile.sample_service_time.
            self._cold_left = cold - 1
            rand = self.rng.random
            while True:
                u1 = rand()
                u2 = 1.0 - rand()
                zs = NV_MAGICCONST * (u1 - 0.5) / u2
                if zs * zs / 4.0 <= -math.log(u2):
                    return zs
        self._refill()
        self._idx = 1
        return self._z[0]

    def _refill(self) -> None:
        np = _np
        state = self._state
        if state is None:
            state = self._state = transplant_state(self.rng)
        accepted: list[float] = []
        while not accepted:
            block = self.block
            if block < self.max_block:
                self.block = block * 2
            u = state.random_sample(block)
            u1 = u[0::2]
            u2 = 1.0 - u[1::2]
            z = NV_MAGICCONST * (u1 - 0.5) / u2
            lhs = z * z / 4.0
            rhs = -np.log(u2)
            ok = lhs <= rhs
            near = np.abs(rhs - lhs) < _LOG_BOUNDARY
            if near.any():
                # Boundary candidates: replay the scalar decision.
                for i in np.nonzero(near)[0]:
                    z_i = float(z[i])
                    ok[i] = z_i * z_i / 4.0 <= -math.log(float(u2[i]))
            accepted = z[ok].tolist()
        self._z = accepted
        self._idx = 0

    def release(self) -> None:
        """Write the numpy-held stream state back to the Python rng.

        Called at end of run; afterwards the replica's ``random.Random``
        reflects every uniform the queue consumed (accepted and
        rejected), exactly as if the blocks had been drawn through it.
        """
        state = self._state
        if state is not None:
            sync_back(self.rng, state)
            self._state = None


def bankable_profile(profile) -> bool:
    """Whether a replica on ``profile`` may draw from a :class:`ZQueue`.

    Bankable means the replica's private stream is consumed *only* by
    the service-time rejection loop: a constant-zero failure probability
    (``sample_failure`` returns False without drawing). Anything else
    (failure draws interleaving with service draws) stays on the scalar
    path for that replica.
    """
    series = profile.failure_prob
    return series._constant and series._values[0] <= 0.0


def zqueue_service_time(profile, zq: ZQueue, now: float) -> float:
    """``BackendProfile.sample_service_time`` with the z from a bank.

    Mirrors the scalar method exactly, including the clamp and the
    degenerate ``p99 <= median`` case that returns without drawing —
    popping a banked z there would desynchronise the stream.
    """
    series = profile.median_latency_s
    median = series._values[0] if series._constant else series.value_at(now)
    if median < 1e-6:
        median = 1e-6
    series = profile.p99_latency_s
    p99 = series._values[0] if series._constant else series.value_at(now)
    if p99 <= median:
        return median
    mu = math.log(median)
    sigma = (math.log(p99) - mu) / Z_P99
    return math.exp(mu + zq.pop() * sigma)


# --------------------------------------------------------------------- #
# Chunked telemetry
# --------------------------------------------------------------------- #

class BufferedTelemetry:
    """Write-behind facade over one :class:`BackendTelemetry`.

    The vector engine hands this to its request machines in place of the
    raw telemetry bundle: responses accumulate in plain lists and are
    folded into the underlying counters/histograms in one numpy pass at
    chunk boundaries (every scrape tick, plus once at end of run). The
    scraper is the only reader of these metrics, so flushing just before
    each scrape makes the folded values indistinguishable from per-event
    updates:

    * counters: n additions of 1.0 == one addition of float(n) exactly
      (integer-valued floats);
    * histogram buckets: counts are order-independent; computed with
      ``searchsorted(side="left")``, the vector twin of
      ``bisect_left``;
    * histogram sums: re-added *sequentially in arrival order* from
      Python floats, reproducing the scalar accumulation chain bit for
      bit (a numpy ``.sum()`` would pairwise-reduce and drift ulps);
    * the in-flight gauge stays live (one float add, and mid-interval
      readers like server-queue gauges must see it move).

    ``observe()``'s NaN/negative validation is applied to the whole
    chunk at flush time — deferred, but the same :class:`TelemetryError`.
    """

    __slots__ = ("base", "_latencies", "_successes")

    def __init__(self, base):
        self.base = base
        self._latencies: list[float] = []
        self._successes: list[bool] = []

    # Mirror of BackendTelemetry's recording interface ------------------ #

    def on_request_sent(self) -> None:
        self.base.inflight._value += 1.0

    def on_response(self, latency_s: float, success: bool) -> None:
        self.base.inflight._value -= 1.0
        self._latencies.append(latency_s)
        self._successes.append(success)

    def flush(self) -> None:
        """Fold every buffered response into the underlying telemetry."""
        latencies = self._latencies
        if not latencies:
            return
        successes = self._successes
        self._latencies = []
        self._successes = []
        np = _np
        base = self.base
        arr = np.asarray(latencies)
        if np.isnan(arr).any() or bool((arr < 0.0).any()):
            raise TelemetryError(
                f"invalid latency in chunk for {base.backend_name}: "
                "negative or NaN")
        mask = np.asarray(successes, dtype=bool)
        total = len(latencies)
        failed = total - int(mask.sum())
        base.requests_total._value += float(total)
        if failed:
            base.failures_total._value += float(failed)
            _fold_histogram(base.failure_latency, arr[~mask], np)
        if failed != total:
            _fold_histogram(base.success_latency, arr[mask], np)


def _fold_histogram(hist, values, np) -> None:
    """Add a chunk of observations to a LatencyHistogram, exactly."""
    if not len(values):
        return
    indices = np.searchsorted(hist.bounds, values, side="left")
    counts = np.bincount(indices, minlength=len(hist._buckets))
    buckets = hist._buckets
    for i, count in enumerate(counts.tolist()):
        if count:
            buckets[i] += count
    hist._count += int(len(values))
    running = hist._sum
    for value in values.tolist():
        running += value
    hist._sum = running
    hist._cumulative = None
