"""Allocation-lean callback scheduling for flat state machines.

The generator engine (:mod:`repro.sim.process`) pays, per hop, one
``Timeout`` allocation, one callback-list append, and one generator
resume through :meth:`Process._resume`. For per-request lifecycles that
run millions of hops, that overhead dominates the simulation — the same
per-request-object bottleneck that pushes real data planes (Envoy,
Linkerd) toward callback state machines.

:class:`FastPath` is the kernel-side substrate for such state machines:
a thin facade over one :class:`~repro.sim.events.EventPool` that
schedules pre-bound zero-argument callbacks on the owning simulator's
ordinary agenda. Fast-path events share the heap (and therefore the
time-then-insertion-order tie-break) with every legacy event, so a
machine that performs the same heap insertions as its generator
reference in the same code positions is *event-order identical* to it —
the property the golden-digest determinism suite pins down.

The request state machine itself lives in the mesh layer
(:mod:`repro.mesh.fastdispatch`); this module knows nothing about
proxies or replicas.
"""

from __future__ import annotations

import typing

from repro.sim.events import EventPool, PooledCallback

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class FastPath:
    """Pooled callback scheduling bound to one simulator.

    Usage from a state machine::

        fast = FastPath(sim)
        fast.schedule(0.25, machine._on_timeout)   # fires once, recycled
        gate = fast.gate(machine._on_wakeup)       # fired via .succeed()

    Scheduled callbacks are plain agenda events: they interleave with
    generator processes, ``call_at`` callbacks and timeouts under the
    simulator's usual deterministic ordering.
    """

    __slots__ = ("sim", "pool")

    def __init__(self, sim: "Simulator", max_free: int = 512):
        self.sim = sim
        self.pool = EventPool(sim, max_free=max_free)

    def schedule(self, delay: float, fn) -> PooledCallback:
        """Run ``fn()`` ``delay`` seconds from now (pooled event)."""
        return self.pool.schedule(delay, fn)

    def gate(self, fn) -> PooledCallback:
        """An unscheduled pooled event; ``succeed()`` it to run ``fn()``.

        The returned event can sit in any wait queue whose owner wakes
        sleepers via ``event.succeed()`` (server wait queues, blackhole
        gates); firing recycles it back into the pool.
        """
        return self.pool.gate(fn)

    def stats(self) -> dict:
        """Pool telemetry: allocations avoided is ``reused``."""
        return {
            "created": self.pool.created,
            "reused": self.pool.reused,
            "free": len(self.pool),
        }
