"""Generator-based simulation processes.

A process wraps a Python generator. Each value the generator yields must be
an :class:`~repro.sim.events.Event` (timeouts, other processes, conditions);
the process sleeps until that event fires and is resumed with the event's
value (or, if the event failed, the event's exception is thrown into the
generator). A process is itself an event that fires when the generator
returns, carrying the generator's return value.
"""

from __future__ import annotations

import typing

from repro.errors import Interrupted, SimulationError
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Process(Event):
    """A running simulation process (also usable as a waitable event)."""

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator, name: str | None = None):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        # Kick the process off at the current simulation time.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the generator can still make progress."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupted` into the process at the current time.

        Interrupting a finished process is a no-op, mirroring the
        forgiveness of cancelling an already-completed task.
        """
        if self.triggered:
            return
        waited = self._waiting_on
        if waited is not None and not waited.processed:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup.add_callback(lambda _ev: self._throw(Interrupted(cause)))
        wakeup.succeed()

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate via event
            self._finish_with_error(error)
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate via event
            self._finish_with_error(error)
            return
        self._wait_on(target)

    def _wait_on(self, target) -> None:
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances")
            self._throw(exc)
            return
        if target.processed:
            # The event already fired; resume on the next scheduler tick so
            # we never recurse unboundedly through chains of ready events.
            wakeup = Event(self.sim)
            wakeup.add_callback(
                lambda _ev: self._resume(target))
            wakeup.succeed()
            self._waiting_on = None
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _finish_with_error(self, error: BaseException) -> None:
        """Finish the process in the failed state.

        The failure is delivered to waiters like any failed event; if nobody
        waits on the process the simulator aborts the run (see
        :meth:`Simulator.step`) unless the process was ``defused``.
        """
        self._exception = error
        self._value = None
        self.sim._enqueue(0.0, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
