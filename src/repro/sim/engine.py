"""The simulation event loop.

:class:`Simulator` owns the clock and a binary-heap agenda of triggered
events. Time is a ``float`` in **seconds**. Ties are broken by insertion
order, which makes runs fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.errors import SimulationError
from repro.sim.events import (_PENDING, AllOf, AnyOf, Callback, Event,
                              PooledCallback, Timeout, unhandled_failure)
from repro.sim.process import Process


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def hello(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.spawn(hello(sim))
        sim.run()
        assert proc.value == "done"
    """

    # Slotted: the clock store/read happens once per processed event, and
    # slot access skips the instance-dict lookup.
    __slots__ = ("_now", "_heap", "_sequence", "events_processed")

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list = []
        self._sequence = count()
        self.events_processed = 0

    # ------------------------------------------------------------------ #
    # Clock and agenda
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _enqueue(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._sequence), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    # ------------------------------------------------------------------ #
    # Event factories
    # ------------------------------------------------------------------ #

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    def spawn(self, generator, name: str | None = None) -> Process:
        """Start a generator as a process at the current time."""
        return Process(self, generator, name=name)

    def call_at(self, when: float, fn, *args) -> Event:
        """Run ``fn(*args)`` as a callback at absolute time ``when``.

        Fast path: a single :class:`~repro.sim.events.Callback` event
        carries the function directly — no closure allocation and no
        callback-list append per scheduled call.
        """
        if when < self._now:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self._now})")
        return Callback(self, when - self._now, fn, args)

    def call_after(self, delay: float, fn, *args) -> Event:
        """Run ``fn(*args)`` as a callback ``delay`` seconds from now."""
        return self.call_at(self._now + delay, fn, *args)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Process the single next event on the agenda.

        A failed event whose exception is delivered to no waiter (and that
        has not been ``defused``) aborts the run — errors must never pass
        silently.
        """
        if not self._heap:
            raise SimulationError("step() on an empty agenda")
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        event._process()
        if unhandled_failure(event):
            raise SimulationError(
                f"unhandled failure in {event!r}") from event._exception

    def run(self, until: float | None = None) -> float:
        """Run until the agenda empties or the clock would pass ``until``.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fires earlier (so periodic measurements can
        rely on the final timestamp). Returns the final clock value.

        The loop body is :meth:`step` inlined (with direct slot reads in
        place of the ``ok`` property): one event dispatch per heap pop,
        no per-event method-call overhead — this is the hottest loop in
        the repository.
        """
        heap = self._heap
        pop = heapq.heappop
        pooled = PooledCallback
        pending = _PENDING
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        processed = self.events_processed
        # Two copies of the loop so the bounded variant (every benchmark
        # run) pays neither a per-event `until is None` test nor a
        # sentinel comparison. Pooled callbacks — the bulk of fast-path
        # traffic — are dispatched inline (the exact body of
        # PooledCallback._process, which step() still uses): they carry
        # no exception, no waiters and no external callbacks, so the
        # failure predicate below never applies to them.
        try:
            if until is None:
                while heap:
                    when, _seq, event = pop(heap)
                    self._now = when
                    processed += 1
                    if type(event) is pooled:
                        fn = event.fn
                        pool = event._pool
                        event.fn = None
                        event._value = pending
                        if pool is not None:
                            free = pool._free
                            if len(free) < pool.max_free:
                                free.append(event)
                        fn()
                        continue
                    event._process()
                    # The cheap slot read guards the common success case;
                    # the full decision is the same unhandled_failure()
                    # predicate step() uses, so the paths cannot diverge.
                    if (event._exception is not None
                            and unhandled_failure(event)):
                        raise SimulationError(
                            f"unhandled failure in {event!r}"
                        ) from event._exception
            else:
                while heap and heap[0][0] <= until:
                    when, _seq, event = pop(heap)
                    self._now = when
                    processed += 1
                    if type(event) is pooled:
                        fn = event.fn
                        pool = event._pool
                        event.fn = None
                        event._value = pending
                        if pool is not None:
                            free = pool._free
                            if len(free) < pool.max_free:
                                free.append(event)
                        fn()
                        continue
                    event._process()
                    if (event._exception is not None
                            and unhandled_failure(event)):
                        raise SimulationError(
                            f"unhandled failure in {event!r}"
                        ) from event._exception
        finally:
            self.events_processed = processed
        if until is not None:
            self._now = until
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} agenda={len(self._heap)}>"
