"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes wait on events by yielding them; arbitrary callbacks can also be
attached. Events carry either a value (success) or an exception (failure).
"""

from __future__ import annotations

import typing
from heapq import heappush

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


def unhandled_failure(event) -> bool:
    """Whether a just-processed event's failure must abort the run.

    The single failure predicate shared by :meth:`Simulator.step` and the
    inlined hot loop in :meth:`Simulator.run` — a failed event whose
    exception reached no waiter, and that nobody ``defused``, must never
    pass silently. Keeping one definition means single-step debugging and
    the hot loop cannot diverge on failure handling.
    """
    return (event._exception is not None and not event._delivered
            and not event.defused)


class Event:
    """A one-shot simulation event.

    Lifecycle: *pending* (just created) → *triggered* (scheduled onto the
    event heap via :meth:`succeed`/:meth:`fail`) → *processed* (callbacks
    have run).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_processed",
                 "_delivered", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list = []
        self._value = _PENDING
        self._exception: BaseException | None = None
        self._processed = False
        self._delivered = False
        # A failed event whose exception reaches no waiter aborts the run
        # unless it has been explicitly defused.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (valid once triggered)."""
        return self._exception is None

    @property
    def value(self):
        """The event's value; raises if the event failed or is pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    def succeed(self, value=None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, optionally after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.sim._enqueue(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception, optionally after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._exception = exception
        self._value = None
        self.sim._enqueue(delay, self)
        return self

    def add_callback(self, callback) -> None:
        """Attach ``callback(event)``; runs when the event is processed.

        If the event has already been processed the callback runs
        immediately (this keeps waiting on completed processes race-free).
        """
        if self._processed:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Run all callbacks. Called by the simulator loop exactly once."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        self._delivered = bool(callbacks)
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self.sim._enqueue(delay, self)


class Callback(Event):
    """An event that invokes ``fn(*args)`` directly when it fires.

    The fast path behind :meth:`Simulator.call_at` / ``call_after``: the
    function is stored on the event itself instead of wrapped in a lambda
    appended to the callback list, saving one closure and one list
    allocation per scheduled call — these fire once per weight push and
    per fault application, so the savings compound over long sweeps.
    Externally attached callbacks (:meth:`Event.add_callback`) still run,
    after the carried function, in the usual order.
    """

    __slots__ = ("fn", "args")

    def __init__(self, sim: "Simulator", delay: float, fn, args=()):
        super().__init__(sim)
        self.fn = fn
        self.args = args
        self._value = None
        self.sim._enqueue(delay, self)

    def _process(self) -> None:
        self._processed = True
        self._delivered = True
        self.fn(*self.args)
        if self.callbacks:
            callbacks, self.callbacks = self.callbacks, []
            for callback in callbacks:
                callback(self)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events):
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        # Only children whose callbacks have run count as fired — a
        # Timeout is "triggered" (scheduled) from birth but has not
        # happened yet.
        return {e: e._value for e in self.events if e.processed and e.ok}


class AllOf(_Condition):
    """Fires when every child event has fired; value maps event → value."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(_Condition):
    """Fires as soon as any child event fires; value maps event → value."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1


class PooledCallback(Event):
    """A reusable zero-argument callback event owned by an :class:`EventPool`.

    The allocation-lean primitive behind the fast-path request engine
    (:mod:`repro.sim.fastpath` / :mod:`repro.mesh.fastdispatch`): instead
    of one fresh ``Timeout`` + generator-resume machinery per hop, a hop
    is one pooled event carrying a pre-bound method. The event recycles
    itself back into its pool *before* invoking the callback, so a chain
    of hops typically reuses one object end to end.

    Reuse contract (enforced by the pool, tested in
    ``tests/sim/test_event_pool.py``):

    * every acquired event is scheduled (or ``succeed``-ed) exactly once
      and fires exactly once — the pool never recycles an event that is
      still on the agenda;
    * holders must drop their reference once the event has fired; the
      recycled object may already be serving an unrelated hop;
    * ``add_callback`` is not supported — the carried function is the
      only continuation (external callbacks would survive recycling and
      fire on the wrong occupant).
    """

    __slots__ = ("fn", "_pool")

    def __init__(self, sim: "Simulator", pool: "EventPool | None" = None):
        super().__init__(sim)
        self.fn = None
        self._pool = pool

    def _process(self) -> None:
        # Inlined recycle: reset the two fields reuse depends on (the
        # carried function, and the trigger sentinel succeed() checks)
        # and return to the free list *before* running the callback, so
        # a chain of hops reuses one object end to end. The remaining
        # Event flags are never consulted on a pooled event: it cannot
        # fail (no _exception), and add_callback is unsupported.
        fn = self.fn
        pool = self._pool
        self.fn = None
        self._value = _PENDING
        if pool is not None:
            free = pool._free
            if len(free) < pool.max_free:
                free.append(self)
        fn()


class EventPool:
    """A bounded free list of :class:`PooledCallback` events.

    ``schedule`` replaces the per-hop ``Timeout`` allocation of the
    generator engine; ``gate`` hands out an *unscheduled* event for
    queue-waiter / blackhole-gate duty (fired later via ``succeed()``).
    The free list is bounded by ``max_free``: under steady load the pool
    reaches its working-set size and every hop is a reuse; events freed
    beyond the bound are dropped to the garbage collector, so a burst
    cannot pin memory forever.
    """

    __slots__ = ("sim", "max_free", "_free", "created", "reused",
                 "_heap", "_sequence")

    def __init__(self, sim: "Simulator", max_free: int = 512):
        if max_free < 0:
            raise SimulationError(f"negative pool bound: {max_free}")
        self.sim = sim
        self.max_free = max_free
        self._free: list = []
        self.created = 0
        self.reused = 0
        # The simulator never rebinds its agenda list or sequence counter,
        # so schedule() can capture them once instead of chasing two
        # attribute chains per hop.
        self._heap = sim._heap
        self._sequence = sim._sequence

    def __len__(self) -> int:
        """Number of events currently sitting on the free list."""
        return len(self._free)

    def acquire(self, fn) -> PooledCallback:
        """A pristine pooled event carrying ``fn``; not yet scheduled."""
        free = self._free
        if free:
            event = free.pop()
            self.reused += 1
        else:
            event = PooledCallback(self.sim, self)
            self.created += 1
        event.fn = fn
        return event

    def schedule(self, delay: float, fn) -> PooledCallback:
        """Schedule ``fn()`` to run ``delay`` seconds from now.

        This is the fast path's hottest call (one per state-machine
        hop), so :meth:`acquire` and the simulator's ``_enqueue`` are
        inlined: one free-list pop, one heap push.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        free = self._free
        if free:
            event = free.pop()
            self.reused += 1
        else:
            event = PooledCallback(self.sim, self)
            self.created += 1
        event.fn = fn
        event._value = None
        heappush(self._heap,
                 (self.sim._now + delay, next(self._sequence), event))
        return event

    def gate(self, fn) -> PooledCallback:
        """An unscheduled pooled event; firing it later runs ``fn()``.

        Hand it to code that wakes sleepers via ``event.succeed()`` — a
        :class:`~repro.sim.resources.Server` wait queue, a replica's
        blackhole gate list.
        """
        return self.acquire(fn)

    def recycle(self, event: PooledCallback) -> None:
        """Reset ``event`` and return it to the free list (if not full)."""
        event.fn = None
        event._value = _PENDING
        event._exception = None
        event._processed = False
        event._delivered = False
        event.defused = False
        if event.callbacks:
            event.callbacks.clear()
        if len(self._free) < self.max_free:
            self._free.append(event)
