"""The L3 rate-control algorithm (paper §3.2, Algorithm 2, Eq. 5).

The weighting algorithm alone concentrates traffic on the fastest backends.
On a sudden RPS *increase* that risks pushing those backends past their
capacity, so the rate controller pulls every weight toward the average —
spreading load while autoscalers catch up. On an RPS *decrease*, freed-up
capacity lets the controller opportunistically push weights apart, shifting
proportionally more traffic to the fast backends.

The control signal is the relative change ``c`` between the EWMA of the
total RPS across all backends and the latest total-RPS sample; the EWMA lags
a trend change, so ``c`` measures how sharply demand just moved.
"""

from __future__ import annotations

from repro.errors import ConfigError

# Relative change is unbounded when the RPS EWMA is ~0 and traffic starts;
# capping keeps the (1 + c^2)^(3/2) arithmetic finite without changing
# behaviour (the output is already fully converged to the mean long before
# the cap).
_MAX_RELATIVE_CHANGE = 1e6


def relative_change(rps_ewma: float, rps_last: float) -> float:
    """Relative change from the RPS EWMA to the latest sample.

    Positive means demand is rising, negative falling. With a zero EWMA
    (no traffic baseline) any incoming traffic is an "infinite" increase;
    the value is capped so downstream arithmetic stays finite.
    """
    if rps_ewma < 0 or rps_last < 0:
        raise ValueError(
            f"RPS values must be >= 0: ewma={rps_ewma} last={rps_last}")
    if rps_ewma == 0.0:
        return _MAX_RELATIVE_CHANGE if rps_last > 0 else 0.0
    change = (rps_last - rps_ewma) / rps_ewma
    return max(-_MAX_RELATIVE_CHANGE, min(change, _MAX_RELATIVE_CHANGE))


def adjust_weight(weight: float, mean_weight: float, change: float) -> float:
    """Algorithm 2 body for one weight (before the floor).

    For ``change > 0`` (Eq. 5) the weight converges asymptotically to the
    mean — the larger the surge, the more uniform the distribution::

        w(c) = w_mu - w_mu / (1 + c^2)^1.5 + w_b / (1 + c^2)^1.5

    For ``change < 0`` the weight moves *away* from the mean: below-average
    weights shrink (``w_b / (1 + 2 c^2)^1.5``) and above-average weights
    grow (``2 w_b - w_mu - (w_b - w_mu) / (1 + 3 c^2)^1.5``), shifting
    traffic opportunistically to the fast backends. ``change == 0`` leaves
    the weight untouched.
    """
    if change > 0.0:
        damping = (1.0 + change * change) ** 1.5
        return mean_weight - mean_weight / damping + weight / damping
    if change < 0.0:
        if weight <= mean_weight:
            return weight / (1.0 + 2.0 * change * change) ** 1.5
        spread = (1.0 + 3.0 * change * change) ** 1.5
        return 2.0 * weight - mean_weight - (weight - mean_weight) / spread
    return weight


def apply_rate_control(weights: dict, rps_ewma: float, rps_last: float,
                       min_weight: float = 1.0) -> dict:
    """Algorithm 2: adjust all weights for the current RPS trend.

    Args:
        weights: backend name → weight from Algorithm 1.
        rps_ewma: EWMA of the total RPS across all backends.
        rps_last: the latest total-RPS sample.
        min_weight: floor guaranteeing continued metric collection.

    Returns:
        New dict of adjusted weights (input is not mutated).
    """
    if min_weight < 0:
        raise ConfigError(f"min weight must be >= 0: {min_weight}")
    if not weights:
        return {}
    change = relative_change(rps_ewma, rps_last)
    mean_weight = sum(weights.values()) / len(weights)
    return {
        name: max(adjust_weight(weight, mean_weight, change), min_weight)
        for name, weight in weights.items()
    }
