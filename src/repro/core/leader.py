"""High-availability mode: lease-based leader election (paper §4).

The reference L3 operator "can be deployed with multiple replicas in a
high-availability mode. Only a single replica acts as the leader and
changes weights through a lease-based locking leader election mechanism"
— the standard Kubernetes pattern (a Lease object with a TTL; the holder
renews it; on holder death the lease expires and another replica takes
over).

:class:`LeaseLock` models the lease; :class:`ControllerReplica` wraps one
controller instance that reconciles only while it holds the lease; a
group of replicas over one shared lease gives exactly the paper's HA
behaviour, including the takeover gap bounded by the lease TTL.
"""

from __future__ import annotations

from repro.errors import ConfigError, Interrupted


class LeaseLock:
    """A TTL lease: one holder at a time, renewable, expiring on silence.

    Time is explicit: every method takes ``now``. For wall-clock use (the
    live testbed's HA mode) a ``clock`` callable can be attached instead,
    and ``now`` may then be omitted — the lease reads the clock itself,
    so simulated and live deployments share one lease implementation.
    """

    def __init__(self, ttl_s: float = 15.0, clock=None):
        """Args:
            ttl_s: lease time-to-live; a silent holder loses the lease
                this long after its last renewal.
            clock: optional zero-argument callable returning the current
                time; used when ``now`` is omitted (wall-clock mode).
        """
        if ttl_s <= 0:
            raise ConfigError(f"lease TTL must be positive: {ttl_s}")
        self.ttl_s = ttl_s
        self.clock = clock
        self._holder: str | None = None
        self._expires_at: float = float("-inf")
        self.transitions: list[tuple[float, str]] = []

    def _now(self, now: float | None) -> float:
        if now is not None:
            return now
        if self.clock is None:
            raise ConfigError(
                "LeaseLock needs an explicit 'now' unless built with a clock")
        return self.clock()

    def holder(self, now: float | None = None) -> str | None:
        """The current holder, or None if the lease has expired."""
        return self._holder if self._now(now) < self._expires_at else None

    def try_acquire(self, candidate: str, now: float | None = None) -> bool:
        """Acquire (or renew) the lease; returns True if held afterwards.

        The current holder always renews; anyone else succeeds only once
        the lease has expired.
        """
        now = self._now(now)
        current = self.holder(now)
        if current is not None and current != candidate:
            return False
        if current != candidate:
            self.transitions.append((now, candidate))
        self._holder = candidate
        self._expires_at = now + self.ttl_s
        return True

    def release(self, candidate: str, now: float | None = None) -> None:
        """Voluntarily give the lease up (graceful shutdown)."""
        now = self._now(now)
        if self.holder(now) == candidate:
            self._expires_at = now


class ControllerReplica:
    """One replica of the L3 operator competing for the lease.

    Any object with a ``reconcile(now)`` method works as the controller
    (both :class:`~repro.core.controller.L3Controller` and the C3
    controller qualify).
    """

    def __init__(self, name: str, controller, lease: LeaseLock,
                 interval_s: float = 5.0):
        if interval_s <= 0:
            raise ConfigError(f"interval must be positive: {interval_s}")
        self.name = name
        self.controller = controller
        self.lease = lease
        self.interval_s = interval_s
        self._crashed = False
        self.reconciles_as_leader = 0

    @property
    def crashed(self) -> bool:
        return self._crashed

    def is_leader(self, now: float | None = None) -> bool:
        return self.lease.holder(now) == self.name

    def crash(self) -> None:
        """Simulate process death: stop renewing, stop reconciling."""
        self._crashed = True

    def recover(self) -> None:
        """Bring a crashed replica back (it rejoins the election)."""
        self._crashed = False

    def step(self, now: float | None = None) -> bool:
        """One loop iteration; returns True if it reconciled as leader.

        With ``now`` omitted the shared lease's clock supplies the time —
        the wall-clock mode the live testbed's HA control loop uses.

        A *paused* controller (fault injection: the reconcile loop is
        stalled but the process is alive) still renews its lease — the
        deployment holds leadership with frozen weights — it just skips
        the reconcile, exactly like the non-HA run loop does.
        """
        if self._crashed:
            return False
        if now is None:
            now = self.lease._now(None)
        if not self.lease.try_acquire(self.name, now):
            return False
        if getattr(self.controller, "paused", False):
            return False
        self.controller.reconcile(now)
        self.reconciles_as_leader += 1
        return True

    def run(self, sim):
        """Generator process: compete-and-reconcile every ``interval_s``."""
        try:
            while True:
                yield sim.timeout(self.interval_s)
                self.step(sim.now)
        except Interrupted:
            return
