"""Cost-aware weighting (paper §6/§7 extension).

Public clouds charge for cross-zone and cross-region data transfer while
intra-cluster traffic is free; the paper notes L3 "lacks awareness of the
network transfer costs" and names it future work. This extension biases
the final weights against expensive backends::

    w'_b = w_b / (1 + cost_weight * egress_cost(source, backend_cluster))

``cost_weight`` trades latency for money: 0 reproduces the paper's L3;
large values approach pure locality routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostConfig:
    """Cross-cluster transfer pricing as seen from one source cluster.

    Attributes:
        source_cluster: the cluster this L3 instance runs in.
        egress_cost: cluster name → relative egress cost of sending a
            request there (same-cluster traffic should map to 0.0;
            unlisted clusters use ``default_cost``).
        default_cost: cost for clusters not listed.
        cost_weight: strength of the bias (0 disables).
    """

    source_cluster: str
    egress_cost: dict = field(default_factory=dict)
    default_cost: float = 1.0
    cost_weight: float = 0.5

    def __post_init__(self):
        if not self.source_cluster:
            raise ConfigError("source cluster must be non-empty")
        if self.default_cost < 0:
            raise ConfigError(f"default cost must be >= 0: {self.default_cost}")
        if self.cost_weight < 0:
            raise ConfigError(f"cost weight must be >= 0: {self.cost_weight}")
        for cluster, cost in self.egress_cost.items():
            if cost < 0:
                raise ConfigError(f"negative cost for {cluster}: {cost}")

    def cost_to(self, cluster: str) -> float:
        """Relative egress cost of routing to ``cluster``."""
        if cluster == self.source_cluster:
            return 0.0
        return self.egress_cost.get(cluster, self.default_cost)


def apply_cost_bias(weights: dict, config: CostConfig,
                    min_weight: float = 1.0) -> dict:
    """Scale weights down by transfer cost; input is not mutated.

    Backend names are the canonical ``service/cluster`` form; the cluster
    suffix decides the cost.
    """
    from repro.mesh.cluster import split_backend_name

    if config.cost_weight == 0.0:
        return dict(weights)
    out = {}
    for name, weight in weights.items():
        _service, cluster = split_backend_name(name)
        bias = 1.0 + config.cost_weight * config.cost_to(cluster)
        out[name] = max(weight / bias, min_weight)
    return out
