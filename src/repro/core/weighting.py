"""The L3 weighting algorithm (paper §3.1, Algorithm 1, Eq. 3 and Eq. 4).

For each backend ``b`` the algorithm combines four filtered data-plane
metrics — tail latency of successful requests ``L_s``, success rate ``R_s``,
requests per second ``R_rps`` and in-flight requests — into one weight:

1. normalise in-flight requests: ``R_i = inflight / R_rps`` (0 if no RPS);
2. estimate the client-perceived latency including retries (Eq. 3)::

       L_est = L_s + P * (1 / R_s - 1)

   where ``P`` is the penalty factor: the client-perceived round-trip cost
   of one failed attempt, multiplied by the expected number of extra tries
   of the geometric retry process;
3. map latency to a weight with the reciprocal of Eq. 4::

       w_b = 1 / ((R_i + 1)^2 * L_est)

   squaring ``R_i + 1`` amplifies the in-flight signal because queued
   requests dominate tail latency (paper §3.1, citing "The Tail at Scale");
4. floor the weight at a minimum so every backend keeps receiving enough
   traffic to stay observable.

TrafficSplit weights are dimensionless ratios, so the implementation scales
the raw reciprocal by ``weight_scale`` before flooring; all ratios — the
only thing the mesh consumes — are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

# Latency estimates at or below zero would make Eq. 4 blow up; anything
# under a microsecond is physically meaningless for an RPC.
_MIN_LATENCY_S = 1e-6

# A vanishing RPS with residual in-flight requests makes the normalised
# in-flight ratio astronomical; beyond this cap the weight is at the floor
# anyway, and squaring an unbounded ratio overflows floats.
_MAX_NORMALIZED_INFLIGHT = 1e6

# Below this RPS the backend effectively has no traffic; Algorithm 1's
# "R_rps != 0" guard means *meaningful* traffic — normalising a decaying
# in-flight EWMA by a decaying near-zero RPS EWMA yields pure noise.
_MIN_RPS_FOR_NORMALIZATION = 0.1


@dataclass(frozen=True)
class BackendSnapshot:
    """Filtered (EWMA) metrics of one backend at reconcile time.

    Attributes:
        name: backend identifier (e.g. ``"hotel-frontend/cluster-2"``).
        latency_s: filtered tail-percentile latency of successful requests,
            in seconds (the paper's ``L_s``, default percentile P99).
        success_rate: filtered success ratio in ``[0, 1]`` (``R_s``).
        rps: filtered requests per second (``R_rps``).
        inflight: filtered number of in-flight requests.
    """

    name: str
    latency_s: float
    success_rate: float
    rps: float
    inflight: float

    def __post_init__(self):
        if self.latency_s < 0:
            raise ValueError(f"negative latency for {self.name}: {self.latency_s}")
        if not 0.0 <= self.success_rate <= 1.0:
            raise ValueError(
                f"success rate for {self.name} outside [0, 1]: {self.success_rate}")
        if self.rps < 0:
            raise ValueError(f"negative RPS for {self.name}: {self.rps}")
        if self.inflight < 0:
            raise ValueError(f"negative in-flight for {self.name}: {self.inflight}")


@dataclass(frozen=True)
class WeightingConfig:
    """Tunables of Algorithm 1.

    Attributes:
        penalty_s: the penalty factor ``P`` in seconds (§5.2.1 settles on
            0.6 s as the latency/success-rate compromise).
        weight_scale: multiplier applied to the Eq. 4 reciprocal before
            flooring; only affects the absolute magnitude, never ratios.
        min_weight: weight floor guaranteeing continued metric collection.
        inflight_exponent: the exponent on ``(R_i + 1)`` — 2 in the paper;
            exposed for the ablation benches.
    """

    penalty_s: float = 0.6
    weight_scale: float = 1000.0
    min_weight: float = 1.0
    inflight_exponent: float = 2.0

    def __post_init__(self):
        if self.penalty_s < 0:
            raise ConfigError(f"penalty must be >= 0: {self.penalty_s}")
        if self.weight_scale <= 0:
            raise ConfigError(f"weight scale must be > 0: {self.weight_scale}")
        if self.min_weight < 0:
            raise ConfigError(f"min weight must be >= 0: {self.min_weight}")
        if self.inflight_exponent < 0:
            raise ConfigError(
                f"in-flight exponent must be >= 0: {self.inflight_exponent}")


def estimate_latency(latency_s: float, success_rate: float,
                     penalty_s: float) -> float:
    """Eq. 3: expected client-perceived latency including retries.

    ``1 / R_s`` is the expectation of the geometrically-distributed number
    of attempts until the first success; each extra attempt costs the
    penalty ``P``. A success rate of zero would make the estimate infinite,
    so Algorithm 1 (line 10-11) falls back to the raw latency — the weight
    floor keeps such a backend observable anyway.
    """
    if success_rate <= 0.0 or penalty_s == 0.0:
        return latency_s
    # Cap the expected number of tries: below ~1e-9 success the penalty
    # term is astronomically large either way, and an uncapped division
    # overflows to inf (0 * inf = nan would poison the weight).
    expected_tries = min(1.0 / success_rate, 1e12)
    return latency_s + penalty_s * (expected_tries - 1.0)


def backend_weight(snapshot: BackendSnapshot,
                   config: WeightingConfig) -> float:
    """Algorithm 1 body for a single backend; returns the floored weight."""
    if snapshot.rps >= _MIN_RPS_FOR_NORMALIZATION:
        normalized_inflight = min(
            snapshot.inflight / snapshot.rps, _MAX_NORMALIZED_INFLIGHT)
    else:
        normalized_inflight = 0.0
    latency_est = estimate_latency(
        snapshot.latency_s, snapshot.success_rate, config.penalty_s)
    latency_est = max(latency_est, _MIN_LATENCY_S)
    raw = config.weight_scale / (
        (normalized_inflight + 1.0) ** config.inflight_exponent * latency_est)
    return max(raw, config.min_weight)


def compute_weights(snapshots, config: WeightingConfig | None = None,
                    penalty_overrides: dict | None = None) -> dict:
    """Algorithm 1: map backend snapshots to weights.

    Args:
        snapshots: iterable of :class:`BackendSnapshot`.
        config: weighting tunables; defaults to the paper's values.
        penalty_overrides: optional per-backend penalty factor (seconds),
            used by the dynamic-penalty extension (paper §7 future work:
            "determine the penalty factor P individually and dynamically
            for each workload"); backends not listed use the static
            ``config.penalty_s``.

    Returns:
        dict mapping backend name to (float) weight, floored at
        ``config.min_weight``.
    """
    config = config or WeightingConfig()
    penalty_overrides = penalty_overrides or {}
    weights: dict[str, float] = {}
    for snapshot in snapshots:
        if snapshot.name in weights:
            raise ValueError(f"duplicate backend name: {snapshot.name}")
        penalty = penalty_overrides.get(snapshot.name)
        if penalty is None:
            effective = config
        else:
            if penalty < 0:
                raise ValueError(
                    f"negative penalty override for {snapshot.name}: {penalty}")
            effective = replace(config, penalty_s=penalty)
        weights[snapshot.name] = backend_weight(snapshot, effective)
    return weights
