"""Time-decayed moving-average filters (paper §3.1, Eq. 1 and Eq. 2).

The EWMA blends a new sample ``Y_now`` with the previous filtered value
``E_prev``::

    E_now = Y_now * (1 - exp(-dt / beta)) + E_prev * exp(-dt / beta)

where ``dt`` is the wall-clock gap between samples and ``beta`` the decay
coefficient. The PeakEWMA variant (from Twitter's Finagle) additionally
*jumps* straight to any sample above the current value — it "reacts quickly
to sample spikes and recovers cautiously".

The paper configures ``beta`` through half-lives (§4): 5 s for latency and
in-flight EWMAs, 10 s for success-rate and RPS EWMAs; use
:func:`half_life_to_beta` for the conversion.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

_LN2 = math.log(2.0)


def half_life_to_beta(half_life_s: float) -> float:
    """Convert a half-life to the Eq. 1 decay coefficient.

    After ``half_life_s`` seconds, the weight of an old value must be
    exactly one half: ``exp(-h / beta) = 1/2`` gives ``beta = h / ln 2``.
    """
    if half_life_s <= 0:
        raise ConfigError(f"half-life must be positive: {half_life_s}")
    return half_life_s / _LN2


class Ewma:
    """Eq. 1 EWMA with the paper's default-value semantics.

    The filter starts at the default value ``lambda`` (§4: 5 s for latency,
    100 % for success rate, 0 for RPS) rather than undefined, so a brand-new
    backend cannot be flooded before a meaningful baseline exists.

    Args:
        default: initial/neutral value (the paper's λ).
        beta: decay coefficient (use :func:`half_life_to_beta`).
        start_time: simulated time at which the filter comes alive.
    """

    def __init__(self, default: float, beta: float, start_time: float = 0.0):
        if beta <= 0:
            raise ConfigError(f"beta must be positive: {beta}")
        self.default = float(default)
        self.beta = float(beta)
        self._value = float(default)
        self._last_update = float(start_time)

    @property
    def value(self) -> float:
        """The current filtered value."""
        return self._value

    @property
    def last_update(self) -> float:
        """Timestamp of the most recent observation or decay step."""
        return self._last_update

    def _blend(self, sample: float, now: float) -> float:
        dt = now - self._last_update
        if dt < 0:
            raise ValueError(
                f"samples must be time-ordered: {now} < {self._last_update}")
        decay = math.exp(-dt / self.beta)
        return sample * (1.0 - decay) + self._value * decay

    def observe(self, sample: float, now: float) -> float:
        """Incorporate ``sample`` taken at time ``now``; returns new value."""
        self._value = self._blend(float(sample), now)
        self._last_update = now
        return self._value

    def decay_toward_default(self, now: float, fraction: float = 0.1) -> float:
        """Move a ``fraction`` of the gap back toward the default value.

        §4: when no metrics are retrievable (at least 10 s without traffic)
        the EWMAs "start converging toward the initial value in small
        increments until new samples come in or the initial state is
        reached".
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(f"fraction must be in (0, 1]: {fraction}")
        self._value += (self.default - self._value) * fraction
        self._last_update = now
        return self._value

    def reset(self, now: float) -> None:
        """Return to the pristine default state."""
        self._value = self.default
        self._last_update = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} value={self._value:.6g} "
                f"default={self.default:.6g} beta={self.beta:.3f}>")


class PeakEwma(Ewma):
    """Eq. 2 PeakEWMA: jump to peaks, decay like Eq. 1 otherwise."""

    def observe(self, sample: float, now: float) -> float:
        sample = float(sample)
        if sample > self._value:
            self._value = sample
        else:
            self._value = self._blend(sample, now)
        self._last_update = now
        return self._value
