"""The L3 reconcile loop (paper §4, Fig. 5).

Every ``reconcile_interval_s`` the controller:

1. asks its :class:`MetricsSource` for fresh aggregated metrics of every
   backend of the TrafficSplit (in the paper: a windowed Prometheus query);
2. feeds them into the per-backend EWMAs, or — when a backend returned no
   metrics for long enough — decays that backend's filters toward their
   defaults;
3. runs the weighting algorithm (Algorithm 1) over the filtered snapshots;
4. runs the rate controller (Algorithm 2) using the EWMA vs. latest sample
   of the *total* RPS;
5. writes integer weights into its :class:`WeightSink` (an SMI
   TrafficSplit in the paper).

The controller is deliberately transport-agnostic: it never imports the
mesh or telemetry packages, only the two small protocols below, which is
what lets the same class drive the simulated mesh, unit tests, and the
pure-algorithm benchmarks.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass

from repro.core.config import L3Config
from repro.core.ewma import Ewma, half_life_to_beta
from repro.core.rate_control import apply_rate_control, relative_change
from repro.core.state import BackendMetricState
from repro.core.weighting import compute_weights
from repro.errors import Interrupted


@dataclass(frozen=True, slots=True)
class MetricSample:
    """One backend's aggregated data-plane metrics over the query window.

    ``None`` instead of a whole sample means "no data" (the backend
    received no traffic in the window), triggering the controller's
    decay-toward-default path. ``latency_s=None`` within a sample means
    traffic flowed but nothing *succeeded* in the window — the success
    latency EWMA then simply keeps its previous value (§3.1: failure
    latency must never pollute the success-latency signal).
    """

    latency_s: float | None
    success_rate: float
    rps: float
    inflight: float
    # Windowed mean of successful-request latency. L3 ignores it (tail
    # percentiles are its design point); the C3 adaptation filters it, as
    # the original C3 EWMAs raw response times.
    mean_latency_s: float | None = None


class MetricsSource(typing.Protocol):
    """Where the controller gets its aggregated data-plane metrics."""

    def collect(self, backend_names: typing.Sequence[str], now: float,
                window_s: float, percentile: float,
                ) -> dict[str, MetricSample | None]:
        """Return a sample (or None) for every requested backend."""
        ...  # pragma: no cover - protocol


class WeightSink(typing.Protocol):
    """Where the controller writes the final traffic distribution."""

    def set_weights(self, weights: dict[str, int], now: float) -> None:
        """Propagate non-negative integer weights to the data plane."""
        ...  # pragma: no cover - protocol


class L3Controller:
    """The L3 operator's control loop over one TrafficSplit.

    Exposes its internal state (filtered metrics, raw and rate-controlled
    weights, the relative RPS change) after every reconcile, mirroring the
    paper's Prometheus/OpenTelemetry introspection of the Go operator.
    """

    def __init__(self, backend_names: typing.Sequence[str],
                 metrics_source: MetricsSource, weight_sink: WeightSink,
                 config: L3Config | None = None, start_time: float = 0.0):
        if not backend_names:
            raise ValueError("L3Controller needs at least one backend")
        if len(set(backend_names)) != len(backend_names):
            raise ValueError(f"duplicate backend names: {backend_names}")
        self.config = config or L3Config()
        self.metrics_source = metrics_source
        self.weight_sink = weight_sink
        self.backends: dict[str, BackendMetricState] = {
            name: BackendMetricState(name, self.config, start_time)
            for name in backend_names
        }
        self.total_rps_ewma = Ewma(
            self.config.default_rps,
            half_life_to_beta(self.config.rps_half_life_s), start_time)
        # Introspection of the last reconcile.
        self.last_raw_weights: dict[str, float] = {}
        self.last_weights: dict[str, int] = {}
        self.last_relative_change: float = 0.0
        self.last_total_rps: float = 0.0
        self.reconcile_count: int = 0
        # Degraded mode: reconciles that failed on the metrics source or
        # the weight sink. The controller holds last-known-good weights and
        # keeps running (the paper's operator must survive a Prometheus or
        # API-server outage without zeroing the TrafficSplit).
        self.degraded_reconciles: int = 0
        self.last_error: str | None = None
        # Pause support (fault injection): while paused the run loop skips
        # reconciles entirely, modelling a stalled/partitioned operator.
        self.paused: bool = False
        # Optional decision audit (duck-typed so the core stays free of
        # tracing imports): anything with record_decision(now, samples,
        # states, raw_weights, weights, relative_change, total_rps) and
        # record_degraded(now, error) — see
        # repro.tracing.audit.DecisionAuditLog. Every reconcile is
        # reported, making each weight push joinable to the data-plane
        # requests it routed.
        self.audit = None

    def add_backend(self, name: str, now: float) -> None:
        """Track a backend added to the TrafficSplit at runtime."""
        if name in self.backends:
            raise ValueError(f"backend already tracked: {name}")
        self.backends[name] = BackendMetricState(name, self.config, now)

    def remove_backend(self, name: str) -> None:
        """Stop tracking a backend removed from the TrafficSplit.

        The introspection snapshots drop the backend eagerly — a dashboard
        reading ``last_weights`` between the removal and the next reconcile
        must never see the ghost of a backend that no longer exists.
        """
        if name not in self.backends:
            raise ValueError(f"unknown backend: {name}")
        if len(self.backends) == 1:
            raise ValueError("cannot remove the last backend")
        del self.backends[name]
        self.last_weights.pop(name, None)
        self.last_raw_weights.pop(name, None)

    def pause(self) -> None:
        """Suspend the reconcile loop (fault injection: stalled operator)."""
        self.paused = True

    def resume(self) -> None:
        """Resume a paused reconcile loop."""
        self.paused = False

    def reconcile(self, now: float) -> dict[str, int]:
        """Run one full metrics → weights cycle and push to the sink.

        A failing metrics source or weight sink puts the reconcile in
        degraded mode instead of propagating: the last-known-good weights
        stay active in the data plane (the sink keeps whatever was pushed
        last), ``degraded_reconciles`` increments, and the next reconcile
        tries again from scratch. Internal errors (bugs) still propagate.
        """
        try:
            samples = self.metrics_source.collect(
                list(self.backends), now, self.config.metrics_window_s,
                self.config.percentile)
        except Interrupted:
            raise
        except Exception as exc:  # noqa: BLE001 - degraded mode by design
            return self._degrade(exc, now)

        total_rps = 0.0
        for name, state in self.backends.items():
            sample = samples.get(name)
            if sample is None:
                if state.is_stale(now):
                    state.decay_toward_defaults(now)
                continue
            state.observe(now, sample.latency_s, sample.success_rate,
                          sample.rps, sample.inflight)
            total_rps += sample.rps

        snapshots = [state.snapshot() for state in self.backends.values()]
        penalty_overrides = self._dynamic_penalties(now)
        raw_weights = compute_weights(
            snapshots, self.config.weighting,
            penalty_overrides=penalty_overrides)

        rps_ewma_before = self.total_rps_ewma.value
        self.total_rps_ewma.observe(total_rps, now)
        if self.config.rate_control_enabled:
            adjusted = apply_rate_control(
                raw_weights, rps_ewma_before, total_rps,
                min_weight=self.config.weighting.min_weight)
            self.last_relative_change = relative_change(
                rps_ewma_before, total_rps)
        else:
            adjusted = dict(raw_weights)
            self.last_relative_change = 0.0

        if self.config.cost is not None:
            from repro.core.cost import apply_cost_bias

            adjusted = apply_cost_bias(
                adjusted, self.config.cost,
                min_weight=self.config.weighting.min_weight)

        # TrafficSplit weights are non-negative integers (SMI spec); round
        # half-up and keep at least 1 so no backend goes dark. (floor(w +
        # 0.5), not round(): Python rounds half to even, which would turn
        # 2.5 into 2.)
        weights = {
            name: max(math.floor(weight + 0.5), 1)
            for name, weight in adjusted.items()
        }
        try:
            self.weight_sink.set_weights(weights, now)
        except Interrupted:
            raise
        except Exception as exc:  # noqa: BLE001 - degraded mode by design
            return self._degrade(exc, now)

        self.last_raw_weights = raw_weights
        self.last_weights = weights
        self.last_total_rps = total_rps
        self.reconcile_count += 1
        self.last_error = None
        if self.audit is not None:
            self.audit.record_decision(
                now=now, samples=samples, states=self.backends,
                raw_weights=raw_weights, weights=weights,
                relative_change=self.last_relative_change,
                total_rps=total_rps)
        return weights

    def _degrade(self, exc: Exception, now: float) -> dict[str, int]:
        """Record a failed reconcile and hold last-known-good weights."""
        self.degraded_reconciles += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        if self.audit is not None:
            self.audit.record_degraded(now, self.last_error)
        return dict(self.last_weights)

    def _dynamic_penalties(self, now: float) -> dict | None:
        """Per-backend penalty factors from observed failure latency.

        Paper §7 future work: "The continuous feedback about the response
        time of unsuccessful requests could be used" to set P per
        workload. When the metrics source can report a windowed percentile
        of failed-request latency, each backend's penalty tracks it
        through an EWMA; without failure data the filter holds (and
        started at the static penalty).
        """
        if not self.config.dynamic_penalty:
            return None
        reader = getattr(self.metrics_source, "failure_latency_quantile",
                         None)
        if reader is None:
            return None
        penalties = {}
        for name, state in self.backends.items():
            observed = reader(name, now, self.config.metrics_window_s,
                              self.config.dynamic_penalty_percentile)
            if observed is not None:
                state.failure_latency.observe(observed, now)
            penalties[name] = state.failure_latency.value
        return penalties

    def run(self, sim):
        """Generator process: reconcile every ``reconcile_interval_s``.

        Spawn with ``sim.spawn(controller.run(sim))`` to drive the loop
        inside a :class:`~repro.sim.engine.Simulator` forever (interrupt to
        stop). While :attr:`paused`, ticks pass without reconciling.
        """
        try:
            while True:
                yield sim.timeout(self.config.reconcile_interval_s)
                if not self.paused:
                    self.reconcile(sim.now)
        except Interrupted:
            return
