"""Operator observability (paper §4).

"Information about the internal state of the controller and algorithm is
exposed through Prometheus or OpenTelemetry metrics ... enabling human
operators and other systems to infer the internal state at any point in
time." This module wires an :class:`~repro.core.controller.L3Controller`'s
internals (per-backend EWMA values, raw and final weights, the relative
RPS change, reconcile count) into the same scrape pipeline the data-plane
metrics use — which is also how the paper's benchmark coordinator records
L3's internal state at one-second granularity to explain observed
behaviour.
"""

from __future__ import annotations

# Metric names under which controller internals are scraped.
WEIGHT = "weight"
RAW_WEIGHT = "raw_weight"
LATENCY_EWMA_S = "latency_ewma_s"
SUCCESS_RATE_EWMA = "success_rate_ewma"
RPS_EWMA = "rps_ewma"
INFLIGHT_EWMA = "inflight_ewma"
RELATIVE_CHANGE = "relative_change"
RECONCILE_COUNT = "reconcile_count"
TOTAL_RPS_EWMA = "total_rps_ewma"
DEGRADED_RECONCILES = "degraded_reconciles"
AUDIT_DECISIONS = "audit_decisions"


class ControllerIntrospection:
    """Registers a controller's internals as custom scrape gauges.

    Per-backend series are stored under ``"{prefix}|{backend}"``; the
    controller-wide series under ``"{prefix}"`` itself.
    """

    def __init__(self, controller, prefix: str = "l3"):
        self.controller = controller
        self.prefix = prefix

    def register(self, scraper) -> None:
        """Attach every internal gauge to ``scraper``."""
        controller = self.controller
        for name in controller.backends:
            series = f"{self.prefix}|{name}"
            scraper.register_gauge(
                series, WEIGHT,
                lambda n=name: controller.last_weights.get(n, 0))
            scraper.register_gauge(
                series, RAW_WEIGHT,
                lambda n=name: controller.last_raw_weights.get(n, 0.0))
            scraper.register_gauge(
                series, LATENCY_EWMA_S,
                lambda n=name: controller.backends[n].latency.value)
            scraper.register_gauge(
                series, SUCCESS_RATE_EWMA,
                lambda n=name: controller.backends[n].success_rate.value)
            scraper.register_gauge(
                series, RPS_EWMA,
                lambda n=name: controller.backends[n].rps.value)
            scraper.register_gauge(
                series, INFLIGHT_EWMA,
                lambda n=name: controller.backends[n].inflight.value)
        scraper.register_gauge(
            self.prefix, RELATIVE_CHANGE,
            lambda: controller.last_relative_change)
        scraper.register_gauge(
            self.prefix, RECONCILE_COUNT,
            lambda: controller.reconcile_count)
        scraper.register_gauge(
            self.prefix, TOTAL_RPS_EWMA,
            lambda: controller.total_rps_ewma.value)
        scraper.register_gauge(
            self.prefix, DEGRADED_RECONCILES,
            lambda: controller.degraded_reconciles)
        # Audit depth (0 until a DecisionAuditLog is attached): lets a
        # dashboard confirm the decision log is actually recording.
        scraper.register_gauge(
            self.prefix, AUDIT_DECISIONS,
            lambda: len(controller.audit.decisions)
            if controller.audit is not None else 0)

    def weight_series(self, store, backend: str, start: float,
                      end: float) -> list:
        """Convenience: the scraped weight history of one backend."""
        return store.series(f"{self.prefix}|{backend}", WEIGHT).window(
            start, end)
