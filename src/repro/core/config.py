"""Configuration for the L3 controller (paper §3 and §4 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.core.weighting import WeightingConfig


@dataclass(frozen=True)
class L3Config:
    """All tunables of the L3 control loop, defaulting to the paper's values.

    Attributes:
        percentile: latency percentile driving the weighting algorithm.
            §3.1 uses P99 and notes P98 / P99.9 are drop-in alternatives.
        weighting: Algorithm 1 tunables (penalty factor et al.).
        use_peak_ewma: filter latency with PeakEWMA (Eq. 2) instead of
            EWMA (Eq. 1). §5.2.2 finds plain EWMA slightly better overall.
        reconcile_interval_s: how often metrics are fetched and weights
            written (§4: every 5 s).
        metrics_window_s: trailing window for counter-rate queries (§4:
            10 s, so the window always holds at least two scrape samples).
        latency_half_life_s / inflight_half_life_s: EWMA half-lives (§4: 5 s).
        success_half_life_s / rps_half_life_s: EWMA half-lives (§4: 10 s).
        default_latency_s: EWMA default λ for latency (§4: 5 s).
        default_success_rate: EWMA default for success rate (§4: 100 %).
        default_rps: EWMA default for RPS (§4: 0).
        staleness_s: with no metrics for this long, EWMAs start converging
            back toward their defaults (§4: at least 10 s without traffic).
        decay_fraction: per-reconcile fraction of the gap to the default
            closed while stale ("in small increments").
        rate_control_enabled: toggle for the Algorithm 2 stage (ablation).
    """

    percentile: float = 0.99
    weighting: WeightingConfig = field(default_factory=WeightingConfig)
    use_peak_ewma: bool = False
    reconcile_interval_s: float = 5.0
    metrics_window_s: float = 10.0
    latency_half_life_s: float = 5.0
    inflight_half_life_s: float = 5.0
    success_half_life_s: float = 10.0
    rps_half_life_s: float = 10.0
    default_latency_s: float = 5.0
    default_success_rate: float = 1.0
    default_rps: float = 0.0
    staleness_s: float = 10.0
    decay_fraction: float = 0.1
    rate_control_enabled: bool = True
    # --- extensions beyond the paper's evaluated system --------------- #
    # §7 future work: derive the penalty factor per backend from the
    # observed latency of failed requests instead of a static constant.
    dynamic_penalty: bool = False
    dynamic_penalty_percentile: float = 0.90
    dynamic_penalty_half_life_s: float = 10.0
    # §6/§7: bias weights against costly cross-cluster transfer.
    cost: object | None = None  # Optional[CostConfig]

    def __post_init__(self):
        if not 0.0 < self.dynamic_penalty_percentile < 1.0:
            raise ConfigError(
                "dynamic penalty percentile must be in (0, 1): "
                f"{self.dynamic_penalty_percentile}")
        if self.dynamic_penalty_half_life_s <= 0:
            raise ConfigError(
                "dynamic penalty half-life must be positive: "
                f"{self.dynamic_penalty_half_life_s}")
        if not 0.0 < self.percentile < 1.0:
            raise ConfigError(f"percentile must be in (0, 1): {self.percentile}")
        for name in ("reconcile_interval_s", "metrics_window_s",
                     "latency_half_life_s", "inflight_half_life_s",
                     "success_half_life_s", "rps_half_life_s",
                     "default_latency_s", "staleness_s"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be positive: {value}")
        if not 0.0 <= self.default_success_rate <= 1.0:
            raise ConfigError(
                f"default success rate outside [0, 1]: {self.default_success_rate}")
        if self.default_rps < 0:
            raise ConfigError(f"default RPS must be >= 0: {self.default_rps}")
        if not 0.0 < self.decay_fraction <= 1.0:
            raise ConfigError(
                f"decay fraction must be in (0, 1]: {self.decay_fraction}")
        if self.metrics_window_s < self.reconcile_interval_s:
            raise ConfigError(
                "metrics window must cover at least one reconcile interval "
                f"({self.metrics_window_s} < {self.reconcile_interval_s})")
