"""The paper's primary contribution: the L3 load-balancing control loop.

Submodules map one-to-one onto the paper's design section (§3) and
proof-of-concept details (§4):

* :mod:`repro.core.ewma` — EWMA (Eq. 1) and PeakEWMA (Eq. 2) filters.
* :mod:`repro.core.weighting` — the weighting algorithm (Algorithm 1,
  Eq. 3 and Eq. 4).
* :mod:`repro.core.rate_control` — the rate-control algorithm
  (Algorithm 2, Eq. 5).
* :mod:`repro.core.state` — per-backend filtered metric state with the §4
  default values and convergence-to-default behaviour.
* :mod:`repro.core.controller` — the reconcile loop gluing a metrics
  source to a weight sink (the simulated TrafficSplit).
"""

from repro.core.config import L3Config
from repro.core.controller import L3Controller, MetricSample
from repro.core.cost import CostConfig, apply_cost_bias
from repro.core.ewma import Ewma, PeakEwma, half_life_to_beta
from repro.core.introspection import ControllerIntrospection
from repro.core.leader import ControllerReplica, LeaseLock
from repro.core.rate_control import apply_rate_control, relative_change
from repro.core.state import BackendMetricState
from repro.core.weighting import BackendSnapshot, WeightingConfig, compute_weights

__all__ = [
    "BackendMetricState",
    "BackendSnapshot",
    "ControllerIntrospection",
    "ControllerReplica",
    "CostConfig",
    "Ewma",
    "L3Config",
    "L3Controller",
    "LeaseLock",
    "MetricSample",
    "PeakEwma",
    "WeightingConfig",
    "apply_cost_bias",
    "apply_rate_control",
    "compute_weights",
    "half_life_to_beta",
    "relative_change",
]
