"""Per-backend filtered metric state maintained by the controller (§4)."""

from __future__ import annotations

from repro.core.config import L3Config
from repro.core.ewma import Ewma, PeakEwma, half_life_to_beta
from repro.core.weighting import BackendSnapshot


class BackendMetricState:
    """The four EWMAs L3 keeps for one backend, with §4 defaults.

    Latency uses EWMA or PeakEWMA depending on configuration; success rate,
    RPS and in-flight always use the plain EWMA. When a backend goes quiet
    (no retrievable metrics for ``config.staleness_s``), each filter decays
    toward its default in small increments.
    """

    def __init__(self, name: str, config: L3Config, now: float = 0.0):
        self.name = name
        self.config = config
        latency_cls = PeakEwma if config.use_peak_ewma else Ewma
        self.latency = latency_cls(
            config.default_latency_s,
            half_life_to_beta(config.latency_half_life_s), now)
        self.success_rate = Ewma(
            config.default_success_rate,
            half_life_to_beta(config.success_half_life_s), now)
        self.rps = Ewma(
            config.default_rps,
            half_life_to_beta(config.rps_half_life_s), now)
        self.inflight = Ewma(
            0.0, half_life_to_beta(config.inflight_half_life_s), now)
        # Dynamic-penalty extension: filtered failed-request latency,
        # defaulting to the static penalty so behaviour is unchanged until
        # real failure samples arrive.
        self.failure_latency = Ewma(
            config.weighting.penalty_s,
            half_life_to_beta(config.dynamic_penalty_half_life_s), now)
        self._last_sample_time = now

    @property
    def last_sample_time(self) -> float:
        """Time of the last successfully retrieved metric sample."""
        return self._last_sample_time

    def observe(self, now: float, latency_s: float | None,
                success_rate: float, rps: float, inflight: float) -> None:
        """Feed one scraped sample into the filters.

        ``latency_s=None`` (traffic flowed but nothing succeeded in the
        window) leaves the success-latency EWMA at its previous value.
        """
        if latency_s is not None:
            self.latency.observe(latency_s, now)
        self.success_rate.observe(success_rate, now)
        self.rps.observe(rps, now)
        self.inflight.observe(inflight, now)
        self._last_sample_time = now

    def is_stale(self, now: float) -> bool:
        """Whether the backend has been without samples long enough to decay."""
        return now - self._last_sample_time >= self.config.staleness_s

    def decay_toward_defaults(self, now: float) -> None:
        """§4 no-traffic behaviour: converge filters back to their defaults."""
        fraction = self.config.decay_fraction
        self.latency.decay_toward_default(now, fraction)
        self.success_rate.decay_toward_default(now, fraction)
        self.rps.decay_toward_default(now, fraction)
        self.inflight.decay_toward_default(now, fraction)

    def snapshot(self) -> BackendSnapshot:
        """Current filtered values as input to the weighting algorithm."""
        return BackendSnapshot(
            name=self.name,
            latency_s=max(self.latency.value, 0.0),
            success_rate=min(max(self.success_rate.value, 0.0), 1.0),
            rps=max(self.rps.value, 0.0),
            inflight=max(self.inflight.value, 0.0),
        )
